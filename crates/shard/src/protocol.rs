//! The transport-agnostic shard frame protocol (DESIGN.md §10/§14).
//!
//! This module owns every byte of the worker protocol — the `"SHRD"`
//! assignment frame, the `"SHRS"`…`"SHRE"` result stream of
//! length-prefixed wire-v2 [`RunRecord`] frames, and the
//! registry-fingerprint handshake — with **no** knowledge of what
//! carries those bytes. The coordinator side ships them over a
//! [`FrameTransport`](crate::transport::FrameTransport) (a child-process
//! pipe or a `TcpStream`); the worker side is [`serve_stream`], which
//! reads one assignment from any `Read`, answers on any `Write`, and is
//! shared verbatim by the re-exec'd pipe worker and the socket worker
//! loop — so the bytes on a pipe and the bytes on a socket are
//! identical by construction.

use crate::ShardError;
use geonet::bytesio::{ByteReader, ByteWriterExt};
use its_testbed::campaign::{grid_fingerprint, CampaignRegistry, CampaignSpec};
use its_testbed::RunRecord;
use std::io::{Read, Write};

/// Wire version of the shard assignment/result protocol.
pub const PROTOCOL_VERSION: u8 = 1;
/// Assignment frame magic (coordinator → worker).
pub(crate) const ASSIGN_MAGIC: &[u8; 4] = b"SHRD";
/// Result stream magic (worker → coordinator).
pub(crate) const RESULT_MAGIC: &[u8; 4] = b"SHRS";
/// Result stream trailer: guards against a worker dying mid-write.
pub(crate) const RESULT_TRAILER: &[u8; 4] = b"SHRE";

/// `spec_index` sentinel: the chunk indexes the flattened grid, not a
/// single spec.
pub const FLAT_GRID: u32 = u32::MAX;

/// One worker's chunk assignment: which campaign (by name and grid
/// fingerprint), which slice of it, and the worker's index for
/// fault-injection bookkeeping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Assignment {
    /// Index of the worker this chunk goes to (also the injection key
    /// for [`crate::KILL_ENV`] / [`crate::HANG_ENV`]).
    pub worker_index: u32,
    /// Registry name of the campaign to re-derive.
    pub campaign: String,
    /// Coordinator's fingerprint of the derived grid; a worker whose
    /// own derivation differs refuses the assignment.
    pub grid_fp: u64,
    /// Grid position of the spec, or [`FLAT_GRID`] for the row-major
    /// flattened grid.
    pub spec_index: u32,
    /// First flat index of the chunk (inclusive).
    pub lo: u64,
    /// Last flat index of the chunk (exclusive).
    pub hi: u64,
}

/// Encodes an assignment as one `"SHRD"` frame.
pub fn encode_assignment(a: &Assignment) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    out.extend_from_slice(ASSIGN_MAGIC);
    out.put_u8(PROTOCOL_VERSION);
    out.put_u32(a.worker_index);
    out.put_u32(a.campaign.len() as u32);
    out.extend_from_slice(a.campaign.as_bytes());
    out.put_u64(a.grid_fp);
    out.put_u32(a.spec_index);
    out.put_u64(a.lo);
    out.put_u64(a.hi);
    out
}

/// Decodes an assignment frame that must span the whole buffer exactly.
///
/// # Errors
///
/// Returns [`ShardError::Protocol`] for malformed, truncated, or
/// inverted-chunk frames; never panics on arbitrary input.
pub fn decode_assignment(bytes: &[u8]) -> Result<Assignment, ShardError> {
    let mut r = ByteReader::new(bytes);
    if r.take(4)? != ASSIGN_MAGIC {
        return Err(ShardError::Protocol("bad assignment magic".into()));
    }
    let version = r.u8()?;
    if version != PROTOCOL_VERSION {
        return Err(ShardError::Protocol(format!(
            "unsupported protocol version {version}"
        )));
    }
    let worker_index = r.u32()?;
    let name_len = r.u32()? as usize;
    let campaign = String::from_utf8(r.take(name_len)?.to_vec())
        .map_err(|_| ShardError::Protocol("campaign name is not UTF-8".into()))?;
    let grid_fp = r.u64()?;
    let spec_index = r.u32()?;
    let lo = r.u64()?;
    let hi = r.u64()?;
    if r.remaining() != 0 {
        return Err(ShardError::Protocol(format!(
            "{} trailing bytes after assignment",
            r.remaining()
        )));
    }
    if lo > hi {
        return Err(ShardError::Protocol(format!("inverted chunk {lo}..{hi}")));
    }
    Ok(Assignment {
        worker_index,
        campaign,
        grid_fp,
        spec_index,
        lo,
        hi,
    })
}

/// Encodes a chunk's records as one `"SHRS"`…`"SHRE"` result stream.
pub fn encode_results(records: &[RunRecord]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(RESULT_MAGIC);
    out.put_u8(PROTOCOL_VERSION);
    out.put_u32(records.len() as u32);
    for record in records {
        out.extend_from_slice(&record.encode());
    }
    out.extend_from_slice(RESULT_TRAILER);
    out
}

/// Decodes a result stream whose record count must equal `expected` —
/// the coordinator form, where the chunk bounds say how many records a
/// worker owes.
///
/// # Errors
///
/// Returns [`ShardError::Protocol`] for malformed or truncated streams
/// and for a count mismatch; never panics on arbitrary input.
pub fn decode_results(bytes: &[u8], expected: usize) -> Result<Vec<RunRecord>, ShardError> {
    let records = decode_result_stream(bytes)?;
    if records.len() != expected {
        return Err(ShardError::Protocol(format!(
            "worker returned {} records, chunk holds {expected}",
            records.len()
        )));
    }
    Ok(records)
}

/// Decodes a result stream trusting its embedded record count — the
/// client form, used on campaign-server response bodies whose length a
/// client does not know ahead of time. The magic, trailer, and
/// no-trailing-bytes checks still apply in full.
///
/// # Errors
///
/// Returns [`ShardError::Protocol`] for malformed or truncated streams;
/// never panics on arbitrary input.
pub fn decode_result_stream(bytes: &[u8]) -> Result<Vec<RunRecord>, ShardError> {
    let mut r = ByteReader::new(bytes);
    if r.take(4)? != RESULT_MAGIC {
        return Err(ShardError::Protocol("bad result magic".into()));
    }
    let version = r.u8()?;
    if version != PROTOCOL_VERSION {
        return Err(ShardError::Protocol(format!(
            "unsupported protocol version {version}"
        )));
    }
    let count = r.u32()? as usize;
    // No with_capacity on the untrusted count: a lying header runs into
    // Truncated within one record's minimum size.
    let mut records = Vec::with_capacity(count.min(bytes.len()));
    for _ in 0..count {
        records.push(RunRecord::decode_from(&mut r)?);
    }
    if r.take(4)? != RESULT_TRAILER {
        return Err(ShardError::Protocol("missing result trailer".into()));
    }
    if r.remaining() != 0 {
        return Err(ShardError::Protocol(format!(
            "{} trailing bytes after results",
            r.remaining()
        )));
    }
    Ok(records)
}

/// Exclusive prefix sums of the grid's run counts; the last element is
/// the flat job total. Shared by coordinator and worker so flat indices
/// mean the same thing on both sides.
pub fn grid_offsets(grid: &[CampaignSpec]) -> Vec<usize> {
    let mut offsets = Vec::with_capacity(grid.len() + 1);
    let mut total = 0usize;
    for spec in grid {
        offsets.push(total);
        total += spec.runs;
    }
    offsets.push(total);
    offsets
}

/// Runs flat job `j` of the grid: row-major, spec-major / run-minor —
/// the same flattening `Runner::execute_grid` uses.
pub fn flat_job(grid: &[CampaignSpec], offsets: &[usize], j: usize) -> RunRecord {
    let k = match offsets.binary_search(&j) {
        Ok(k) => k,
        Err(k) => k - 1,
    };
    grid[k].run_job(j - offsets[k])
}

/// Executes one chunk of the campaign in-process: the worker's compute
/// step, and the coordinator's deterministic fallback when a worker
/// fails — identical bytes either way, by purity of the jobs.
///
/// # Errors
///
/// Returns [`ShardError::Protocol`] when the chunk bounds or spec index
/// do not fit the grid.
pub fn compute_chunk(
    grid: &[CampaignSpec],
    spec_index: u32,
    lo: usize,
    hi: usize,
) -> Result<Vec<RunRecord>, ShardError> {
    if spec_index == FLAT_GRID {
        let offsets = grid_offsets(grid);
        let total = *offsets.last().unwrap_or(&0);
        if hi > total {
            return Err(ShardError::Protocol(format!(
                "chunk {lo}..{hi} exceeds {total} flat jobs"
            )));
        }
        Ok((lo..hi).map(|j| flat_job(grid, &offsets, j)).collect())
    } else {
        let spec = grid
            .get(spec_index as usize)
            .ok_or_else(|| ShardError::Protocol(format!("spec index {spec_index} out of range")))?;
        if hi > spec.runs {
            return Err(ShardError::Protocol(format!(
                "chunk {lo}..{hi} exceeds {} runs",
                spec.runs
            )));
        }
        Ok((lo..hi).map(|i| spec.run_job(i)).collect())
    }
}

fn injection_requested(env: &str, worker_index: u32) -> bool {
    std::env::var(env)
        .map(|v| {
            v.split(',')
                .any(|tok| tok.trim().parse::<u32>() == Ok(worker_index))
        })
        .unwrap_or(false)
}

pub(crate) fn kill_requested(worker_index: u32) -> bool {
    injection_requested(crate::KILL_ENV, worker_index)
}

pub(crate) fn hang_requested(worker_index: u32) -> bool {
    injection_requested(crate::HANG_ENV, worker_index)
}

/// How a [`serve_stream`] call ended, when it did not error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeOutcome {
    /// The assignment was computed and the full result stream written.
    Completed,
    /// [`crate::KILL_ENV`] named this worker index: the result magic was
    /// written and then the stream abandoned mid-protocol. The caller
    /// decides what "dying" means on its transport — the pipe worker
    /// exits 9, the socket worker drops the connection.
    InjectedKill,
}

/// Serves one assignment: the worker side of the shard protocol, over
/// any transport.
///
/// Reads `input` to end-of-stream (the pipe worker's closed stdin, or a
/// socket peer's write-half shutdown), decodes the assignment, applies
/// the kill/hang fault injections, verifies the registry fingerprint
/// handshake, computes the chunk, and writes the result stream to
/// `output`. Both the re-exec'd `--shard-worker` process and the socket
/// worker loop call exactly this function, so worker behaviour cannot
/// diverge between transports.
///
/// # Errors
///
/// Returns a [`ShardError`] for I/O failures, malformed assignments,
/// unknown campaigns, and fingerprint mismatches; the caller surfaces
/// it on its transport (exit status, dropped connection).
pub fn serve_stream(
    input: &mut dyn Read,
    output: &mut dyn Write,
    registry: &CampaignRegistry,
) -> Result<ServeOutcome, ShardError> {
    let mut frame = Vec::new();
    input.read_to_end(&mut frame)?;
    let assignment = decode_assignment(&frame)?;

    if kill_requested(assignment.worker_index) {
        // Die mid-protocol: magic written, records missing — the
        // coordinator must detect the truncation and re-run the chunk.
        output.write_all(RESULT_MAGIC)?;
        output.flush()?;
        return Ok(ServeOutcome::InjectedKill);
    }
    if hang_requested(assignment.worker_index) {
        // Hang without producing a byte: the coordinator's result
        // timeout must fire and re-run the chunk. park() may wake
        // spuriously, hence the loop.
        loop {
            std::thread::park();
        }
    }

    let grid = registry
        .derive(&assignment.campaign)
        .ok_or_else(|| ShardError::UnknownCampaign(assignment.campaign.clone()))?;
    let derived = grid_fingerprint(&grid);
    if derived != assignment.grid_fp {
        return Err(ShardError::FingerprintMismatch {
            expected: assignment.grid_fp,
            derived,
        });
    }

    let records = compute_chunk(
        &grid,
        assignment.spec_index,
        assignment.lo as usize,
        assignment.hi as usize,
    )?;
    output.write_all(&encode_results(&records))?;
    output.flush()?;
    Ok(ServeOutcome::Completed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use its_testbed::ScenarioConfig;

    fn demo_grid() -> Vec<CampaignSpec> {
        vec![
            CampaignSpec::new(
                ScenarioConfig {
                    seed: 7000,
                    ..ScenarioConfig::default()
                },
                3,
            ),
            CampaignSpec::with_seed_offset(
                ScenarioConfig {
                    seed: 7000,
                    ..ScenarioConfig::default()
                },
                1000,
                2,
            ),
        ]
    }

    fn registry() -> CampaignRegistry {
        CampaignRegistry::new().register("demo", demo_grid)
    }

    #[test]
    fn assignment_roundtrips() {
        let a = Assignment {
            worker_index: 3,
            campaign: "table2".into(),
            grid_fp: 0xDEAD_BEEF_CAFE_F00D,
            spec_index: FLAT_GRID,
            lo: 64,
            hi: 128,
        };
        assert_eq!(decode_assignment(&encode_assignment(&a)), Ok(a));
    }

    #[test]
    fn assignment_rejects_garbage_and_truncation() {
        assert!(decode_assignment(b"nope").is_err());
        let a = Assignment {
            worker_index: 0,
            campaign: "x".into(),
            grid_fp: 1,
            spec_index: 0,
            lo: 0,
            hi: 4,
        };
        let bytes = encode_assignment(&a);
        for cut in 0..bytes.len() {
            assert!(decode_assignment(&bytes[..cut]).is_err(), "cut {cut}");
        }
        let mut inverted = encode_assignment(&a);
        let n = inverted.len();
        // Swap lo and hi (the last two u64s).
        inverted[n - 16..].rotate_left(8);
        assert!(decode_assignment(&inverted).is_err());
    }

    #[test]
    fn results_roundtrip_and_reject_wrong_count() {
        let grid = demo_grid();
        let records = compute_chunk(&grid, 0, 0, 2).unwrap();
        let bytes = encode_results(&records);
        let back = decode_results(&bytes, 2).unwrap();
        assert_eq!(back, records);
        assert!(decode_results(&bytes, 3).is_err());
        for cut in 0..bytes.len() {
            assert!(decode_results(&bytes[..cut], 2).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn result_stream_decodes_without_expected_count() {
        let grid = demo_grid();
        let records = compute_chunk(&grid, 0, 0, 2).unwrap();
        let bytes = encode_results(&records);
        assert_eq!(decode_result_stream(&bytes).unwrap(), records);
        // The strictness survives: truncation and trailing bytes fail.
        for cut in 0..bytes.len() {
            assert!(decode_result_stream(&bytes[..cut]).is_err(), "cut {cut}");
        }
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(decode_result_stream(&padded).is_err());
    }

    #[test]
    fn flat_jobs_match_per_spec_jobs() {
        let grid = demo_grid();
        let offsets = grid_offsets(&grid);
        assert_eq!(offsets, vec![0, 3, 5]);
        for (k, spec) in grid.iter().enumerate() {
            for i in 0..spec.runs {
                let flat = flat_job(&grid, &offsets, offsets[k] + i);
                assert_eq!(flat, spec.run_job(i), "spec {k} run {i}");
            }
        }
    }

    #[test]
    fn compute_chunk_bounds_checked() {
        let grid = demo_grid();
        assert!(compute_chunk(&grid, 0, 0, 4).is_err());
        assert!(compute_chunk(&grid, 2, 0, 1).is_err());
        assert!(compute_chunk(&grid, FLAT_GRID, 0, 6).is_err());
        assert_eq!(compute_chunk(&grid, FLAT_GRID, 0, 5).unwrap().len(), 5);
    }

    #[test]
    fn serve_stream_answers_an_assignment_in_memory() {
        let grid = demo_grid();
        let assignment = Assignment {
            worker_index: 0,
            campaign: "demo".into(),
            grid_fp: grid_fingerprint(&grid),
            spec_index: FLAT_GRID,
            lo: 1,
            hi: 4,
        };
        let frame = encode_assignment(&assignment);
        let mut out = Vec::new();
        let outcome = serve_stream(&mut frame.as_slice(), &mut out, &registry()).unwrap();
        assert_eq!(outcome, ServeOutcome::Completed);
        let records = decode_results(&out, 3).unwrap();
        assert_eq!(records, compute_chunk(&grid, FLAT_GRID, 1, 4).unwrap());
    }

    #[test]
    fn serve_stream_refuses_wrong_fingerprint_and_unknown_campaign() {
        let grid = demo_grid();
        let mut wrong_fp = Assignment {
            worker_index: 0,
            campaign: "demo".into(),
            grid_fp: grid_fingerprint(&grid) ^ 1,
            spec_index: 0,
            lo: 0,
            hi: 1,
        };
        let frame = encode_assignment(&wrong_fp);
        let mut out = Vec::new();
        assert!(matches!(
            serve_stream(&mut frame.as_slice(), &mut out, &registry()),
            Err(ShardError::FingerprintMismatch { .. })
        ));
        assert!(out.is_empty(), "a refused assignment writes no bytes");

        wrong_fp.campaign = "nope".into();
        let frame = encode_assignment(&wrong_fp);
        assert!(matches!(
            serve_stream(&mut frame.as_slice(), &mut out, &registry()),
            Err(ShardError::UnknownCampaign(_))
        ));
    }

    // The kill-env assertions share one test: the variable is process
    // global and libtest runs tests concurrently.
    #[test]
    fn kill_injection_parses_and_truncates_mid_protocol() {
        std::env::set_var(crate::KILL_ENV, "1, 3, 7");
        assert!(!kill_requested(0));
        assert!(kill_requested(1));
        assert!(kill_requested(3));

        let grid = demo_grid();
        let assignment = Assignment {
            worker_index: 7,
            campaign: "demo".into(),
            grid_fp: grid_fingerprint(&grid),
            spec_index: 0,
            lo: 0,
            hi: 1,
        };
        let frame = encode_assignment(&assignment);
        let mut out = Vec::new();
        let outcome = serve_stream(&mut frame.as_slice(), &mut out, &registry()).unwrap();
        std::env::remove_var(crate::KILL_ENV);
        assert!(!kill_requested(1));
        assert_eq!(outcome, ServeOutcome::InjectedKill);
        // Exactly the truncation the coordinator must detect: magic
        // only, no version, no count, no trailer.
        assert_eq!(out, RESULT_MAGIC);
        assert!(decode_results(&out, 1).is_err());
    }

    #[test]
    fn hang_list_parses() {
        std::env::set_var(crate::HANG_ENV, "0,2");
        assert!(hang_requested(0));
        assert!(!hang_requested(1));
        assert!(hang_requested(2));
        std::env::remove_var(crate::HANG_ENV);
        assert!(!hang_requested(0));
    }
}
