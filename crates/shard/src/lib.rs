//! Multi-process campaign executor: deterministic sharding across
//! worker processes (DESIGN.md §10).
//!
//! The in-process thread [`runner::Runner`] parallelises a campaign with
//! static contiguous chunks merged in index order. This crate extends
//! the same contract across *processes*: a coordinator re-execs the
//! current binary in a hidden `--shard-worker` mode, assigns each worker
//! a contiguous seed-index chunk computed with the very same
//! [`runner::chunk_bounds`] math, receives length-prefixed
//! [`RunRecord`] frames ([`its_testbed::wire`]) over a stdout pipe, and
//! merges chunks in worker order. Because jobs are pure functions of
//! their index and the chunk/merge math is shared, shard-mode aggregates
//! are **bitwise identical** to serial and to the thread runner at every
//! worker count, including 1.
//!
//! # How a campaign crosses the process boundary
//!
//! Closures cannot be sent to another process, so workers *re-derive*
//! the campaign from code: the host binary registers named campaigns in
//! a [`CampaignRegistry`] (a name plus a plain `fn() -> Vec<CampaignSpec>`)
//! and calls [`worker_main_if_requested`] first thing in `main`. The
//! coordinator sends only the campaign name, a fingerprint of the specs
//! it expects ([`its_testbed::campaign::grid_fingerprint`]), and the
//! chunk bounds; a worker whose derived specs do not match the
//! fingerprint refuses the assignment, and the coordinator re-executes
//! the chunk in-process — degraded to local execution, never to wrong
//! results.
//!
//! # Failure handling
//!
//! A worker that dies, times out, returns a bad exit status, or produces
//! an unparseable / wrong-length result stream has its chunk
//! deterministically re-executed in-process by the coordinator. The
//! merged output is therefore identical whether every worker succeeded
//! or every worker was killed — [`ShardExecutor::fallback_chunks`]
//! reports how many chunks took the fallback path so tests can assert
//! the recovery actually happened.
//!
//! # Example
//!
//! ```no_run
//! use its_testbed::campaign::{CampaignSpec, Executor, Serial};
//! use its_testbed::ScenarioConfig;
//! use shard::{CampaignRegistry, ShardExecutor};
//!
//! fn demo_grid() -> Vec<CampaignSpec> {
//!     vec![CampaignSpec::new(ScenarioConfig::default(), 16)]
//! }
//!
//! fn main() {
//!     let registry = CampaignRegistry::new().register("demo", demo_grid);
//!     // Must run before anything else: re-exec'd children enter here.
//!     shard::worker_main_if_requested(&registry);
//!
//!     let exec = ShardExecutor::new(4, "demo", &registry).unwrap();
//!     let spec = &demo_grid()[0];
//!     assert_eq!(spec.execute(&exec), spec.execute(&Serial));
//! }
//! ```

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

use geonet::bytesio::{ByteReader, ByteWriterExt};
use its_testbed::campaign::{grid_fingerprint, CampaignSpec, Executor};
use its_testbed::RunRecord;
use std::io::{Read, Write};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::Duration;

/// The hidden argv flag that switches a re-exec'd binary into worker
/// mode.
pub const WORKER_FLAG: &str = "--shard-worker";

/// Fault-injection environment variable: a comma-separated list of
/// worker indices that must die mid-protocol (after the result magic,
/// before any record). Used by the determinism tests to exercise the
/// coordinator's recovery path.
pub const KILL_ENV: &str = "SHARD_INJECT_KILL";

/// Fault-injection environment variable: a comma-separated list of
/// worker indices that must hang forever after reading their
/// assignment, never writing a byte. Exercises the coordinator's
/// result-timeout path ([`ShardExecutor::timed_out_chunks`]): the hung
/// child is killed and its chunk re-executed in-process.
pub const HANG_ENV: &str = "SHARD_INJECT_HANG";

/// Wire version of the shard assignment/result protocol.
const PROTOCOL_VERSION: u8 = 1;
/// Assignment frame magic (coordinator → worker stdin).
const ASSIGN_MAGIC: &[u8; 4] = b"SHRD";
/// Result stream magic (worker stdout → coordinator).
const RESULT_MAGIC: &[u8; 4] = b"SHRS";
/// Result stream trailer: guards against a worker dying mid-write.
const RESULT_TRAILER: &[u8; 4] = b"SHRE";
/// `spec_index` sentinel: the chunk indexes the flattened grid, not a
/// single spec.
const FLAT_GRID: u32 = u32::MAX;

/// Errors surfaced by the shard layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardError {
    /// The named campaign is not in the registry.
    UnknownCampaign(String),
    /// A protocol frame was malformed.
    Protocol(String),
    /// The worker's derived specs do not match the coordinator's
    /// fingerprint.
    FingerprintMismatch {
        /// Fingerprint the coordinator sent.
        expected: u64,
        /// Fingerprint the worker derived.
        derived: u64,
    },
    /// An I/O error, stringified (io::Error is not Clone/PartialEq).
    Io(String),
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::UnknownCampaign(name) => write!(f, "unknown campaign `{name}`"),
            ShardError::Protocol(what) => write!(f, "shard protocol error: {what}"),
            ShardError::FingerprintMismatch { expected, derived } => write!(
                f,
                "campaign fingerprint mismatch: coordinator {expected:#018x}, worker {derived:#018x}"
            ),
            ShardError::Io(what) => write!(f, "shard i/o error: {what}"),
        }
    }
}

impl std::error::Error for ShardError {}

impl From<std::io::Error> for ShardError {
    fn from(e: std::io::Error) -> Self {
        ShardError::Io(e.to_string())
    }
}

impl From<geonet::GeonetError> for ShardError {
    fn from(e: geonet::GeonetError) -> Self {
        ShardError::Protocol(e.to_string())
    }
}

impl From<its_testbed::wire::WireError> for ShardError {
    fn from(e: its_testbed::wire::WireError) -> Self {
        ShardError::Protocol(e.to_string())
    }
}

/// Named campaigns a binary can execute in worker mode.
///
/// Both the coordinator and its re-exec'd workers construct the same
/// registry (it is plain data: names and `fn` pointers), so a campaign
/// is identified across the process boundary by name + spec fingerprint
/// instead of by serialising configuration.
#[derive(Debug, Clone, Default)]
pub struct CampaignRegistry {
    entries: Vec<(&'static str, fn() -> Vec<CampaignSpec>)>,
}

impl CampaignRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a named campaign; `derive` must be a pure function so every
    /// process derives identical specs.
    pub fn register(mut self, name: &'static str, derive: fn() -> Vec<CampaignSpec>) -> Self {
        self.entries.push((name, derive));
        self
    }

    /// Derives the named campaign's specs, if registered.
    pub fn derive(&self, name: &str) -> Option<Vec<CampaignSpec>> {
        self.entries
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, f)| f())
    }

    /// Registered campaign names, in registration order.
    pub fn names(&self) -> impl Iterator<Item = &'static str> + '_ {
        self.entries.iter().map(|(n, _)| *n)
    }
}

/// One worker's chunk assignment.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Assignment {
    worker_index: u32,
    campaign: String,
    grid_fp: u64,
    spec_index: u32,
    lo: u64,
    hi: u64,
}

fn encode_assignment(a: &Assignment) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    out.extend_from_slice(ASSIGN_MAGIC);
    out.put_u8(PROTOCOL_VERSION);
    out.put_u32(a.worker_index);
    out.put_u32(a.campaign.len() as u32);
    out.extend_from_slice(a.campaign.as_bytes());
    out.put_u64(a.grid_fp);
    out.put_u32(a.spec_index);
    out.put_u64(a.lo);
    out.put_u64(a.hi);
    out
}

fn decode_assignment(bytes: &[u8]) -> Result<Assignment, ShardError> {
    let mut r = ByteReader::new(bytes);
    if r.take(4)? != ASSIGN_MAGIC {
        return Err(ShardError::Protocol("bad assignment magic".into()));
    }
    let version = r.u8()?;
    if version != PROTOCOL_VERSION {
        return Err(ShardError::Protocol(format!(
            "unsupported protocol version {version}"
        )));
    }
    let worker_index = r.u32()?;
    let name_len = r.u32()? as usize;
    let campaign = String::from_utf8(r.take(name_len)?.to_vec())
        .map_err(|_| ShardError::Protocol("campaign name is not UTF-8".into()))?;
    let grid_fp = r.u64()?;
    let spec_index = r.u32()?;
    let lo = r.u64()?;
    let hi = r.u64()?;
    if r.remaining() != 0 {
        return Err(ShardError::Protocol(format!(
            "{} trailing bytes after assignment",
            r.remaining()
        )));
    }
    if lo > hi {
        return Err(ShardError::Protocol(format!("inverted chunk {lo}..{hi}")));
    }
    Ok(Assignment {
        worker_index,
        campaign,
        grid_fp,
        spec_index,
        lo,
        hi,
    })
}

fn encode_results(records: &[RunRecord]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(RESULT_MAGIC);
    out.put_u8(PROTOCOL_VERSION);
    out.put_u32(records.len() as u32);
    for record in records {
        out.extend_from_slice(&record.encode());
    }
    out.extend_from_slice(RESULT_TRAILER);
    out
}

fn decode_results(bytes: &[u8], expected: usize) -> Result<Vec<RunRecord>, ShardError> {
    let mut r = ByteReader::new(bytes);
    if r.take(4)? != RESULT_MAGIC {
        return Err(ShardError::Protocol("bad result magic".into()));
    }
    let version = r.u8()?;
    if version != PROTOCOL_VERSION {
        return Err(ShardError::Protocol(format!(
            "unsupported protocol version {version}"
        )));
    }
    let count = r.u32()? as usize;
    if count != expected {
        return Err(ShardError::Protocol(format!(
            "worker returned {count} records, chunk holds {expected}"
        )));
    }
    let mut records = Vec::with_capacity(expected.min(bytes.len()));
    for _ in 0..count {
        records.push(RunRecord::decode_from(&mut r)?);
    }
    if r.take(4)? != RESULT_TRAILER {
        return Err(ShardError::Protocol("missing result trailer".into()));
    }
    if r.remaining() != 0 {
        return Err(ShardError::Protocol(format!(
            "{} trailing bytes after results",
            r.remaining()
        )));
    }
    Ok(records)
}

/// Exclusive prefix sums of the grid's run counts; the last element is
/// the flat job total. Shared by coordinator and worker so flat indices
/// mean the same thing on both sides.
fn grid_offsets(grid: &[CampaignSpec]) -> Vec<usize> {
    let mut offsets = Vec::with_capacity(grid.len() + 1);
    let mut total = 0usize;
    for spec in grid {
        offsets.push(total);
        total += spec.runs;
    }
    offsets.push(total);
    offsets
}

/// Runs flat job `j` of the grid: row-major, spec-major / run-minor —
/// the same flattening `Runner::execute_grid` uses.
fn flat_job(grid: &[CampaignSpec], offsets: &[usize], j: usize) -> RunRecord {
    let k = match offsets.binary_search(&j) {
        Ok(k) => k,
        Err(k) => k - 1,
    };
    grid[k].run_job(j - offsets[k])
}

fn compute_chunk(
    grid: &[CampaignSpec],
    spec_index: u32,
    lo: usize,
    hi: usize,
) -> Result<Vec<RunRecord>, ShardError> {
    if spec_index == FLAT_GRID {
        let offsets = grid_offsets(grid);
        let total = *offsets.last().unwrap_or(&0);
        if hi > total {
            return Err(ShardError::Protocol(format!(
                "chunk {lo}..{hi} exceeds {total} flat jobs"
            )));
        }
        Ok((lo..hi).map(|j| flat_job(grid, &offsets, j)).collect())
    } else {
        let spec = grid
            .get(spec_index as usize)
            .ok_or_else(|| ShardError::Protocol(format!("spec index {spec_index} out of range")))?;
        if hi > spec.runs {
            return Err(ShardError::Protocol(format!(
                "chunk {lo}..{hi} exceeds {} runs",
                spec.runs
            )));
        }
        Ok((lo..hi).map(|i| spec.run_job(i)).collect())
    }
}

fn injection_requested(env: &str, worker_index: u32) -> bool {
    std::env::var(env)
        .map(|v| {
            v.split(',')
                .any(|tok| tok.trim().parse::<u32>() == Ok(worker_index))
        })
        .unwrap_or(false)
}

fn kill_requested(worker_index: u32) -> bool {
    injection_requested(KILL_ENV, worker_index)
}

fn hang_requested(worker_index: u32) -> bool {
    injection_requested(HANG_ENV, worker_index)
}

/// Enters worker mode — and never returns — when `--shard-worker` is on
/// the command line; otherwise does nothing.
///
/// Host binaries (examples, `harness = false` tests) must call this
/// before any other work, with the same registry the coordinator uses,
/// so re-exec'd children handle their assignment instead of re-running
/// `main`.
pub fn worker_main_if_requested(registry: &CampaignRegistry) {
    if !std::env::args().any(|a| a == WORKER_FLAG) {
        return;
    }
    let code = match run_worker(registry) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("shard worker: {e}");
            3
        }
    };
    std::process::exit(code);
}

fn run_worker(registry: &CampaignRegistry) -> Result<(), ShardError> {
    let mut input = Vec::new();
    std::io::stdin().lock().read_to_end(&mut input)?;
    let assignment = decode_assignment(&input)?;

    let stdout = std::io::stdout();
    if kill_requested(assignment.worker_index) {
        // Die mid-protocol: magic written, records missing — the
        // coordinator must detect the truncation and re-run the chunk.
        let mut out = stdout.lock();
        out.write_all(RESULT_MAGIC)?;
        out.flush()?;
        std::process::exit(9);
    }
    if hang_requested(assignment.worker_index) {
        // Hang without producing a byte: the coordinator's result
        // timeout must fire, kill this process, and re-run the chunk.
        // park() may wake spuriously, hence the loop.
        loop {
            std::thread::park();
        }
    }

    let grid = registry
        .derive(&assignment.campaign)
        .ok_or_else(|| ShardError::UnknownCampaign(assignment.campaign.clone()))?;
    let derived = grid_fingerprint(&grid);
    if derived != assignment.grid_fp {
        return Err(ShardError::FingerprintMismatch {
            expected: assignment.grid_fp,
            derived,
        });
    }

    let records = compute_chunk(
        &grid,
        assignment.spec_index,
        assignment.lo as usize,
        assignment.hi as usize,
    )?;
    let mut out = stdout.lock();
    out.write_all(&encode_results(&records))?;
    out.flush()?;
    Ok(())
}

/// A handle on one spawned worker: the child plus the channel its
/// stdout-reader thread reports on. `None` when the spawn itself failed.
enum Worker {
    Spawned {
        child: Child,
        rx: mpsc::Receiver<std::io::Result<Vec<u8>>>,
    },
    FailedToSpawn,
}

/// The multi-process campaign executor (coordinator side).
///
/// Bound to one named campaign of a [`CampaignRegistry`]: `execute` /
/// `execute_grid` shard the campaign across `workers` re-exec'd
/// processes when the requested specs match the registered ones, and
/// re-execute any failed chunk in-process. See the crate docs for the
/// protocol and the determinism argument.
#[derive(Debug)]
pub struct ShardExecutor {
    workers: usize,
    campaign: String,
    grid: Vec<CampaignSpec>,
    grid_fp: u64,
    timeout: Duration,
    fallback_chunks: AtomicUsize,
    timed_out_chunks: AtomicUsize,
}

impl ShardExecutor {
    /// An executor sharding the registry's `campaign` across `workers`
    /// processes (clamped to at least 1).
    pub fn new(
        workers: usize,
        campaign: &str,
        registry: &CampaignRegistry,
    ) -> Result<Self, ShardError> {
        let grid = registry
            .derive(campaign)
            .ok_or_else(|| ShardError::UnknownCampaign(campaign.to_owned()))?;
        let grid_fp = grid_fingerprint(&grid);
        Ok(Self {
            workers: workers.max(1),
            campaign: campaign.to_owned(),
            grid,
            grid_fp,
            timeout: Duration::from_secs(120),
            fallback_chunks: AtomicUsize::new(0),
            timed_out_chunks: AtomicUsize::new(0),
        })
    }

    /// Replaces the per-worker result timeout (default 120 s). A worker
    /// that exceeds it is killed and its chunk re-executed in-process.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// The configured worker-process count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// How many chunks have been re-executed in-process because a worker
    /// failed, timed out, or refused the assignment. Zero on the happy
    /// path; the kill-injection tests assert it is non-zero after a
    /// recovery.
    pub fn fallback_chunks(&self) -> usize {
        self.fallback_chunks.load(Ordering::Relaxed)
    }

    /// How many of the [`Self::fallback_chunks`] were caused by the
    /// per-worker result timeout specifically (a hung or wedged worker
    /// that was killed). The hang-injection test asserts this is the
    /// failure class actually exercised.
    pub fn timed_out_chunks(&self) -> usize {
        self.timed_out_chunks.load(Ordering::Relaxed)
    }

    /// Shards `jobs` flat indices across the worker processes and merges
    /// the chunks in worker order. `spec_index` selects a single spec of
    /// the campaign grid or, as [`FLAT_GRID`], the row-major flattened
    /// grid. Chunks whose worker fails are re-derived in-process with
    /// `rerun` — identical bytes, by purity of the jobs.
    fn run_sharded(
        &self,
        spec_index: u32,
        jobs: usize,
        rerun: &dyn Fn(usize, usize) -> Vec<RunRecord>,
    ) -> Vec<RunRecord> {
        if jobs == 0 {
            return Vec::new();
        }
        let workers = self.workers.min(jobs);
        let exe = std::env::current_exe().ok();
        let chunks: Vec<(usize, usize)> = (0..workers)
            .map(|w| runner::chunk_bounds(jobs, workers, w))
            .collect();

        let handles: Vec<Worker> = chunks
            .iter()
            .enumerate()
            .map(|(w, &(lo, hi))| {
                let Some(exe) = exe.as_ref() else {
                    return Worker::FailedToSpawn;
                };
                self.spawn_worker(exe, w as u32, spec_index, lo, hi)
                    .unwrap_or(Worker::FailedToSpawn)
            })
            .collect();

        let mut out = Vec::with_capacity(jobs);
        for (handle, &(lo, hi)) in handles.into_iter().zip(&chunks) {
            match self.collect_worker(handle, hi - lo) {
                Ok(records) => out.extend(records),
                Err(_) => {
                    self.fallback_chunks.fetch_add(1, Ordering::Relaxed);
                    out.extend(rerun(lo, hi));
                }
            }
        }
        out
    }

    fn spawn_worker(
        &self,
        exe: &std::path::Path,
        worker_index: u32,
        spec_index: u32,
        lo: usize,
        hi: usize,
    ) -> Result<Worker, ShardError> {
        let mut child = Command::new(exe)
            .arg(WORKER_FLAG)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()?;
        // The assignment is a few dozen bytes — far below the pipe
        // buffer — so write-then-close cannot deadlock against the
        // child's own writes.
        let assignment = encode_assignment(&Assignment {
            worker_index,
            campaign: self.campaign.clone(),
            grid_fp: self.grid_fp,
            spec_index,
            lo: lo as u64,
            hi: hi as u64,
        });
        if let Some(mut stdin) = child.stdin.take() {
            // A failed write means the child is already gone; collection
            // will notice and fall back.
            let _ = stdin.write_all(&assignment);
        }
        let Some(mut stdout) = child.stdout.take() else {
            let _ = child.kill();
            let _ = child.wait();
            return Err(ShardError::Io("worker stdout not captured".into()));
        };
        let (tx, rx) = mpsc::channel();
        std::thread::spawn(move || {
            let mut buf = Vec::new();
            let result = stdout.read_to_end(&mut buf).map(|_| buf);
            let _ = tx.send(result);
        });
        Ok(Worker::Spawned { child, rx })
    }

    fn collect_worker(
        &self,
        worker: Worker,
        expected: usize,
    ) -> Result<Vec<RunRecord>, ShardError> {
        let Worker::Spawned { mut child, rx } = worker else {
            return Err(ShardError::Io("worker failed to spawn".into()));
        };
        let bytes = match rx.recv_timeout(self.timeout) {
            Ok(Ok(bytes)) => bytes,
            Ok(Err(e)) => {
                let _ = child.kill();
                let _ = child.wait();
                return Err(ShardError::Io(e.to_string()));
            }
            Err(_) => {
                let _ = child.kill();
                let _ = child.wait();
                self.timed_out_chunks.fetch_add(1, Ordering::Relaxed);
                return Err(ShardError::Io("worker timed out".into()));
            }
        };
        let status = child.wait()?;
        if !status.success() {
            return Err(ShardError::Io(format!("worker exited with {status}")));
        }
        decode_results(&bytes, expected)
    }

    /// Position of `spec` in the bound campaign grid, by fingerprint.
    fn position_of(&self, spec: &CampaignSpec) -> Option<u32> {
        let fp = spec.fingerprint();
        self.grid
            .iter()
            .position(|s| s.fingerprint() == fp)
            .map(|k| k as u32)
    }
}

impl Executor for ShardExecutor {
    fn execute(&self, spec: &CampaignSpec) -> Vec<RunRecord> {
        match self.position_of(spec) {
            Some(index) => self.run_sharded(index, spec.runs, &|lo, hi| {
                (lo..hi).map(|i| spec.run_job(i)).collect()
            }),
            None => {
                // The spec is not part of the bound campaign: workers
                // could not re-derive it, so run it locally. Degraded,
                // never wrong.
                self.fallback_chunks.fetch_add(1, Ordering::Relaxed);
                (0..spec.runs).map(|i| spec.run_job(i)).collect()
            }
        }
    }

    fn execute_grid(&self, specs: &[CampaignSpec]) -> Vec<Vec<RunRecord>> {
        let flat = if grid_fingerprint(specs) == self.grid_fp {
            let offsets = grid_offsets(specs);
            let total = *offsets.last().unwrap_or(&0);
            self.run_sharded(FLAT_GRID, total, &|lo, hi| {
                (lo..hi).map(|j| flat_job(specs, &offsets, j)).collect()
            })
        } else {
            // Not the registered grid: every chunk would be refused, so
            // go straight to local execution.
            self.fallback_chunks.fetch_add(1, Ordering::Relaxed);
            let offsets = grid_offsets(specs);
            (0..*offsets.last().unwrap_or(&0))
                .map(|j| flat_job(specs, &offsets, j))
                .collect()
        };
        let mut records = flat.into_iter();
        specs
            .iter()
            .map(|spec| records.by_ref().take(spec.runs).collect())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use its_testbed::ScenarioConfig;

    fn demo_grid() -> Vec<CampaignSpec> {
        vec![
            CampaignSpec::new(
                ScenarioConfig {
                    seed: 7000,
                    ..ScenarioConfig::default()
                },
                3,
            ),
            CampaignSpec::with_seed_offset(
                ScenarioConfig {
                    seed: 7000,
                    ..ScenarioConfig::default()
                },
                1000,
                2,
            ),
        ]
    }

    fn registry() -> CampaignRegistry {
        CampaignRegistry::new().register("demo", demo_grid)
    }

    #[test]
    fn assignment_roundtrips() {
        let a = Assignment {
            worker_index: 3,
            campaign: "table2".into(),
            grid_fp: 0xDEAD_BEEF_CAFE_F00D,
            spec_index: FLAT_GRID,
            lo: 64,
            hi: 128,
        };
        assert_eq!(decode_assignment(&encode_assignment(&a)), Ok(a));
    }

    #[test]
    fn assignment_rejects_garbage_and_truncation() {
        assert!(decode_assignment(b"nope").is_err());
        let a = Assignment {
            worker_index: 0,
            campaign: "x".into(),
            grid_fp: 1,
            spec_index: 0,
            lo: 0,
            hi: 4,
        };
        let bytes = encode_assignment(&a);
        for cut in 0..bytes.len() {
            assert!(decode_assignment(&bytes[..cut]).is_err(), "cut {cut}");
        }
        let mut inverted = encode_assignment(&a);
        let n = inverted.len();
        // Swap lo and hi (the last two u64s).
        inverted[n - 16..].rotate_left(8);
        assert!(decode_assignment(&inverted).is_err());
    }

    #[test]
    fn results_roundtrip_and_reject_wrong_count() {
        let grid = demo_grid();
        let records = compute_chunk(&grid, 0, 0, 2).unwrap();
        let bytes = encode_results(&records);
        let back = decode_results(&bytes, 2).unwrap();
        assert_eq!(back, records);
        assert!(decode_results(&bytes, 3).is_err());
        for cut in 0..bytes.len() {
            assert!(decode_results(&bytes[..cut], 2).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn flat_jobs_match_per_spec_jobs() {
        let grid = demo_grid();
        let offsets = grid_offsets(&grid);
        assert_eq!(offsets, vec![0, 3, 5]);
        for (k, spec) in grid.iter().enumerate() {
            for i in 0..spec.runs {
                let flat = flat_job(&grid, &offsets, offsets[k] + i);
                assert_eq!(flat, spec.run_job(i), "spec {k} run {i}");
            }
        }
    }

    #[test]
    fn compute_chunk_bounds_checked() {
        let grid = demo_grid();
        assert!(compute_chunk(&grid, 0, 0, 4).is_err());
        assert!(compute_chunk(&grid, 2, 0, 1).is_err());
        assert!(compute_chunk(&grid, FLAT_GRID, 0, 6).is_err());
        assert_eq!(compute_chunk(&grid, FLAT_GRID, 0, 5).unwrap().len(), 5);
    }

    #[test]
    fn registry_lookup() {
        let r = registry();
        assert!(r.derive("demo").is_some());
        assert!(r.derive("nope").is_none());
        assert_eq!(r.names().collect::<Vec<_>>(), vec!["demo"]);
        assert!(matches!(
            ShardExecutor::new(2, "nope", &r),
            Err(ShardError::UnknownCampaign(_))
        ));
    }

    #[test]
    fn unregistered_spec_falls_back_locally() {
        // The unit-test binary is a libtest harness, so real worker
        // re-exec is exercised in tests/shard_determinism.rs; here we
        // pin the local fallback path.
        let exec = ShardExecutor::new(2, "demo", &registry()).unwrap();
        let foreign = CampaignSpec::new(
            ScenarioConfig {
                seed: 1234,
                ..ScenarioConfig::default()
            },
            2,
        );
        let records = foreign.execute(&exec);
        assert_eq!(records.len(), 2);
        assert_eq!(records[0], foreign.run_job(0));
        assert!(exec.fallback_chunks() > 0);
    }

    #[test]
    fn kill_list_parses() {
        std::env::set_var(KILL_ENV, "1, 3");
        assert!(!kill_requested(0));
        assert!(kill_requested(1));
        assert!(kill_requested(3));
        std::env::remove_var(KILL_ENV);
        assert!(!kill_requested(1));
    }

    #[test]
    fn hang_list_parses() {
        std::env::set_var(HANG_ENV, "0,2");
        assert!(hang_requested(0));
        assert!(!hang_requested(1));
        assert!(hang_requested(2));
        std::env::remove_var(HANG_ENV);
        assert!(!hang_requested(0));
    }
}
