//! Multi-process campaign executor: deterministic sharding across
//! worker processes (DESIGN.md §10/§14).
//!
//! The in-process thread [`runner::Runner`] parallelises a campaign with
//! static contiguous chunks merged in index order. This crate extends
//! the same contract across *processes*, in two layers:
//!
//! * [`protocol`] — every byte of the worker protocol: the `"SHRD"`
//!   assignment frame, the `"SHRS"`…`"SHRE"` result stream of
//!   length-prefixed [`RunRecord`] frames ([`its_testbed::wire`]), the
//!   registry-fingerprint handshake, and the shared chunk math. The
//!   worker side is one function, [`protocol::serve_stream`], over
//!   generic `Read`/`Write`.
//! * [`transport`] — what carries those bytes: the
//!   [`transport::FrameTransport`] trait with the child-process
//!   [`transport::PipeTransport`] (re-exec with `--shard-worker`,
//!   stdin/stdout pipes) and the socket [`transport::TcpTransport`]
//!   (used by the `campaignd` campaign server and its `--shard-listen`
//!   socket workers).
//!
//! [`ShardExecutor`] is the coordinator: it assigns each worker a
//! contiguous seed-index chunk computed with the very same
//! [`runner::chunk_bounds`] math and merges chunks in worker order.
//! Because jobs are pure functions of their index and the chunk/merge
//! math is shared, shard-mode aggregates are **bitwise identical** to
//! serial and to the thread runner at every worker count, including 1.
//!
//! # How a campaign crosses the process boundary
//!
//! Closures cannot be sent to another process, so workers *re-derive*
//! the campaign from code: the host binary registers named campaigns in
//! a [`CampaignRegistry`] (a name plus a plain `fn() -> Vec<CampaignSpec>`,
//! shared repo-wide from [`its_testbed::campaign`]) and calls
//! [`worker_main_if_requested`] first thing in `main`. The coordinator
//! sends only the campaign name, a fingerprint of the specs it expects
//! ([`its_testbed::campaign::grid_fingerprint`]), and the chunk bounds;
//! a worker whose derived specs do not match the fingerprint refuses
//! the assignment, and the coordinator re-executes the chunk in-process
//! — degraded to local execution, never to wrong results.
//!
//! # Failure handling
//!
//! A worker that dies, times out, returns a bad exit status, or produces
//! an unparseable / wrong-length result stream has its chunk
//! deterministically re-executed in-process by the coordinator. The
//! merged output is therefore identical whether every worker succeeded
//! or every worker was killed — [`ShardExecutor::fallback_chunks`]
//! reports how many chunks took the fallback path so tests can assert
//! the recovery actually happened.
//!
//! # Example
//!
//! ```no_run
//! use its_testbed::campaign::{CampaignSpec, Executor, Serial};
//! use its_testbed::ScenarioConfig;
//! use shard::{CampaignRegistry, ShardExecutor};
//!
//! fn demo_grid() -> Vec<CampaignSpec> {
//!     vec![CampaignSpec::new(ScenarioConfig::default(), 16)]
//! }
//!
//! fn main() {
//!     let registry = CampaignRegistry::new().register("demo", demo_grid);
//!     // Must run before anything else: re-exec'd children enter here.
//!     shard::worker_main_if_requested(&registry);
//!
//!     let exec = ShardExecutor::new(4, "demo", &registry).unwrap();
//!     let spec = &demo_grid()[0];
//!     assert_eq!(spec.execute(&exec), spec.execute(&Serial));
//! }
//! ```

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

pub mod protocol;
pub mod transport;

use its_testbed::campaign::{grid_fingerprint, CampaignSpec, Executor};
use its_testbed::RunRecord;
use protocol::{
    encode_assignment, flat_job, grid_offsets, serve_stream, Assignment, ServeOutcome, FLAT_GRID,
};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;
use transport::{collect_chunk, ChunkFailure, FrameTransport, PipeTransport};

pub use its_testbed::campaign::CampaignRegistry;

/// The hidden argv flag that switches a re-exec'd binary into worker
/// mode.
pub const WORKER_FLAG: &str = "--shard-worker";

/// Fault-injection environment variable: a comma-separated list of
/// worker indices that must die mid-protocol (after the result magic,
/// before any record). Used by the determinism tests to exercise the
/// coordinator's recovery path.
pub const KILL_ENV: &str = "SHARD_INJECT_KILL";

/// Fault-injection environment variable: a comma-separated list of
/// worker indices that must hang forever after reading their
/// assignment, never writing a byte. Exercises the coordinator's
/// result-timeout path ([`ShardExecutor::timed_out_chunks`]): the hung
/// child is killed and its chunk re-executed in-process.
pub const HANG_ENV: &str = "SHARD_INJECT_HANG";

/// Errors surfaced by the shard layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardError {
    /// The named campaign is not in the registry.
    UnknownCampaign(String),
    /// A protocol frame was malformed.
    Protocol(String),
    /// The worker's derived specs do not match the coordinator's
    /// fingerprint.
    FingerprintMismatch {
        /// Fingerprint the coordinator sent.
        expected: u64,
        /// Fingerprint the worker derived.
        derived: u64,
    },
    /// An I/O error, stringified (io::Error is not Clone/PartialEq).
    Io(String),
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::UnknownCampaign(name) => write!(f, "unknown campaign `{name}`"),
            ShardError::Protocol(what) => write!(f, "shard protocol error: {what}"),
            ShardError::FingerprintMismatch { expected, derived } => write!(
                f,
                "campaign fingerprint mismatch: coordinator {expected:#018x}, worker {derived:#018x}"
            ),
            ShardError::Io(what) => write!(f, "shard i/o error: {what}"),
        }
    }
}

impl std::error::Error for ShardError {}

impl From<std::io::Error> for ShardError {
    fn from(e: std::io::Error) -> Self {
        ShardError::Io(e.to_string())
    }
}

impl From<geonet::GeonetError> for ShardError {
    fn from(e: geonet::GeonetError) -> Self {
        ShardError::Protocol(e.to_string())
    }
}

impl From<its_testbed::wire::WireError> for ShardError {
    fn from(e: its_testbed::wire::WireError) -> Self {
        ShardError::Protocol(e.to_string())
    }
}

/// Enters worker mode — and never returns — when `--shard-worker` is on
/// the command line; otherwise does nothing.
///
/// Host binaries (examples, `harness = false` tests) must call this
/// before any other work, with the same registry the coordinator uses,
/// so re-exec'd children handle their assignment instead of re-running
/// `main`.
pub fn worker_main_if_requested(registry: &CampaignRegistry) {
    if !std::env::args().any(|a| a == WORKER_FLAG) {
        return;
    }
    let code = match run_worker(registry) {
        Ok(ServeOutcome::Completed) => 0,
        // An injected kill dies mid-protocol with a distinctive status.
        Ok(ServeOutcome::InjectedKill) => 9,
        Err(e) => {
            eprintln!("shard worker: {e}");
            3
        }
    };
    std::process::exit(code);
}

fn run_worker(registry: &CampaignRegistry) -> Result<ServeOutcome, ShardError> {
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    serve_stream(&mut stdin.lock(), &mut stdout.lock(), registry)
}

/// The multi-process campaign executor (coordinator side).
///
/// Bound to one named campaign of a [`CampaignRegistry`]: `execute` /
/// `execute_grid` shard the campaign across `workers` re-exec'd
/// processes when the requested specs match the registered ones, and
/// re-execute any failed chunk in-process. See the crate docs for the
/// protocol and the determinism argument.
#[derive(Debug)]
pub struct ShardExecutor {
    workers: usize,
    campaign: String,
    grid: Vec<CampaignSpec>,
    grid_fp: u64,
    timeout: Duration,
    fallback_chunks: AtomicUsize,
    timed_out_chunks: AtomicUsize,
}

impl ShardExecutor {
    /// An executor sharding the registry's `campaign` across `workers`
    /// processes (clamped to at least 1).
    ///
    /// # Errors
    ///
    /// Returns [`ShardError::UnknownCampaign`] when the registry does
    /// not know `campaign`.
    pub fn new(
        workers: usize,
        campaign: &str,
        registry: &CampaignRegistry,
    ) -> Result<Self, ShardError> {
        let grid = registry
            .derive(campaign)
            .ok_or_else(|| ShardError::UnknownCampaign(campaign.to_owned()))?;
        let grid_fp = grid_fingerprint(&grid);
        Ok(Self {
            workers: workers.max(1),
            campaign: campaign.to_owned(),
            grid,
            grid_fp,
            timeout: Duration::from_secs(120),
            fallback_chunks: AtomicUsize::new(0),
            timed_out_chunks: AtomicUsize::new(0),
        })
    }

    /// Replaces the per-worker result timeout (default 120 s). A worker
    /// that exceeds it is killed and its chunk re-executed in-process.
    #[must_use]
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// The configured worker-process count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// How many chunks have been re-executed in-process because a worker
    /// failed, timed out, or refused the assignment. Zero on the happy
    /// path; the kill-injection tests assert it is non-zero after a
    /// recovery.
    pub fn fallback_chunks(&self) -> usize {
        self.fallback_chunks.load(Ordering::Relaxed)
    }

    /// How many of the [`Self::fallback_chunks`] were caused by the
    /// per-worker result timeout specifically (a hung or wedged worker
    /// that was killed). The hang-injection test asserts this is the
    /// failure class actually exercised.
    pub fn timed_out_chunks(&self) -> usize {
        self.timed_out_chunks.load(Ordering::Relaxed)
    }

    /// Shards `jobs` flat indices across the worker processes and merges
    /// the chunks in worker order. `spec_index` selects a single spec of
    /// the campaign grid or, as [`protocol::FLAT_GRID`], the row-major
    /// flattened grid. Chunks whose worker fails are re-derived
    /// in-process with `rerun` — identical bytes, by purity of the jobs.
    fn run_sharded(
        &self,
        spec_index: u32,
        jobs: usize,
        rerun: &dyn Fn(usize, usize) -> Vec<RunRecord>,
    ) -> Vec<RunRecord> {
        if jobs == 0 {
            return Vec::new();
        }
        let workers = self.workers.min(jobs);
        let exe = std::env::current_exe().ok();
        let chunks: Vec<(usize, usize)> = (0..workers)
            .map(|w| runner::chunk_bounds(jobs, workers, w))
            .collect();

        // Assign every worker its chunk up front — each PipeTransport
        // starts its stdout reader at send_frame, so workers compute
        // concurrently while we collect in chunk order below.
        let links: Vec<Option<PipeTransport>> = chunks
            .iter()
            .enumerate()
            .map(|(w, &(lo, hi))| {
                let exe = exe.as_ref()?;
                let mut link = PipeTransport::spawn(exe).ok()?;
                let frame = encode_assignment(&Assignment {
                    worker_index: w as u32,
                    campaign: self.campaign.clone(),
                    grid_fp: self.grid_fp,
                    spec_index,
                    lo: lo as u64,
                    hi: hi as u64,
                });
                link.send_frame(&frame).ok()?;
                Some(link)
            })
            .collect();

        let mut out = Vec::with_capacity(jobs);
        for (link, &(lo, hi)) in links.into_iter().zip(&chunks) {
            let collected = match link {
                Some(mut link) => collect_chunk(&mut link, hi - lo, self.timeout),
                None => Err(ChunkFailure::Failed("worker failed to spawn".into())),
            };
            match collected {
                Ok(records) => out.extend(records),
                Err(failure) => {
                    if failure == ChunkFailure::TimedOut {
                        self.timed_out_chunks.fetch_add(1, Ordering::Relaxed);
                    }
                    self.fallback_chunks.fetch_add(1, Ordering::Relaxed);
                    out.extend(rerun(lo, hi));
                }
            }
        }
        out
    }

    /// Position of `spec` in the bound campaign grid, by fingerprint.
    fn position_of(&self, spec: &CampaignSpec) -> Option<u32> {
        let fp = spec.fingerprint();
        self.grid
            .iter()
            .position(|s| s.fingerprint() == fp)
            .map(|k| k as u32)
    }
}

impl Executor for ShardExecutor {
    fn execute(&self, spec: &CampaignSpec) -> Vec<RunRecord> {
        match self.position_of(spec) {
            Some(index) => self.run_sharded(index, spec.runs, &|lo, hi| {
                (lo..hi).map(|i| spec.run_job(i)).collect()
            }),
            None => {
                // The spec is not part of the bound campaign: workers
                // could not re-derive it, so run it locally. Degraded,
                // never wrong.
                self.fallback_chunks.fetch_add(1, Ordering::Relaxed);
                (0..spec.runs).map(|i| spec.run_job(i)).collect()
            }
        }
    }

    fn execute_grid(&self, specs: &[CampaignSpec]) -> Vec<Vec<RunRecord>> {
        let flat = if grid_fingerprint(specs) == self.grid_fp {
            let offsets = grid_offsets(specs);
            let total = *offsets.last().unwrap_or(&0);
            self.run_sharded(FLAT_GRID, total, &|lo, hi| {
                (lo..hi).map(|j| flat_job(specs, &offsets, j)).collect()
            })
        } else {
            // Not the registered grid: every chunk would be refused, so
            // go straight to local execution.
            self.fallback_chunks.fetch_add(1, Ordering::Relaxed);
            let offsets = grid_offsets(specs);
            (0..*offsets.last().unwrap_or(&0))
                .map(|j| flat_job(specs, &offsets, j))
                .collect()
        };
        let mut records = flat.into_iter();
        specs
            .iter()
            .map(|spec| records.by_ref().take(spec.runs).collect())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use its_testbed::ScenarioConfig;

    fn demo_grid() -> Vec<CampaignSpec> {
        vec![
            CampaignSpec::new(
                ScenarioConfig {
                    seed: 7000,
                    ..ScenarioConfig::default()
                },
                3,
            ),
            CampaignSpec::with_seed_offset(
                ScenarioConfig {
                    seed: 7000,
                    ..ScenarioConfig::default()
                },
                1000,
                2,
            ),
        ]
    }

    fn registry() -> CampaignRegistry {
        CampaignRegistry::new().register("demo", demo_grid)
    }

    #[test]
    fn registry_lookup() {
        let r = registry();
        assert!(r.derive("demo").is_some());
        assert!(r.derive("nope").is_none());
        assert_eq!(r.names().collect::<Vec<_>>(), vec!["demo"]);
        assert!(matches!(
            ShardExecutor::new(2, "nope", &r),
            Err(ShardError::UnknownCampaign(_))
        ));
    }

    #[test]
    fn unregistered_spec_falls_back_locally() {
        // The unit-test binary is a libtest harness, so real worker
        // re-exec is exercised in tests/shard_determinism.rs; here we
        // pin the local fallback path.
        let exec = ShardExecutor::new(2, "demo", &registry()).unwrap();
        let foreign = CampaignSpec::new(
            ScenarioConfig {
                seed: 1234,
                ..ScenarioConfig::default()
            },
            2,
        );
        let records = foreign.execute(&exec);
        assert_eq!(records.len(), 2);
        assert_eq!(records[0], foreign.run_job(0));
        assert!(exec.fallback_chunks() > 0);
    }
}
