//! Byte carriers for the shard frame protocol (DESIGN.md §14).
//!
//! [`protocol`](crate::protocol) defines the frames; this module moves
//! them. The coordinator side is the [`FrameTransport`] trait — ship an
//! assignment frame, then collect the complete result stream under a
//! deadline — with two implementations:
//!
//! * [`PipeTransport`] — re-execs the current binary with
//!   `--shard-worker` and speaks over its stdin/stdout pipes. This is
//!   the original `crates/shard` path, preserved bit-for-bit: the
//!   assignment is written and the pipe closed, the child's stdout is
//!   drained by a reader thread, and a worker that dies, hangs, or
//!   misbehaves is reaped exactly as before.
//! * [`TcpTransport`] — connects to a socket worker, writes the
//!   assignment, and shuts down the write half so the worker sees the
//!   same end-of-stream the pipe worker sees when stdin closes. The
//!   result stream is drained by an identical reader thread, so the
//!   timeout semantics match the pipe path.
//!
//! The worker side of the socket path is [`serve_connections`]: a loop
//! that answers one assignment per connection through the shared
//! [`serve_stream`](crate::protocol::serve_stream). Workers announce
//! their listening address to a coordinator with [`announce_worker`]
//! (`"SHRG"` registration frame), either from inside a test process or
//! from the hidden [`LISTEN_FLAG`] re-exec mode
//! ([`socket_worker_main_if_requested`]).

use crate::protocol::{serve_stream, ServeOutcome};
use crate::ShardError;
use geonet::bytesio::{ByteReader, ByteWriterExt};
use its_testbed::campaign::CampaignRegistry;
use its_testbed::RunRecord;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::process::{Child, Command, Stdio};
use std::sync::mpsc;
use std::time::Duration;

/// The hidden argv flag that switches a re-exec'd binary into socket
/// worker mode: `--shard-listen <coordinator-addr>` binds an ephemeral
/// listener, announces it to the coordinator, and serves assignments
/// forever. The pipe twin is [`crate::WORKER_FLAG`].
pub const LISTEN_FLAG: &str = "--shard-listen";

/// Worker-registration frame magic (worker → coordinator control port).
const REGISTER_MAGIC: &[u8; 4] = b"SHRG";

/// Read timeout a socket worker applies per connection so one silent
/// peer cannot wedge the serve loop forever.
const WORKER_READ_TIMEOUT: Duration = Duration::from_secs(120);

/// Why collecting a worker's result stream failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportFailure {
    /// The deadline passed with no complete stream; the peer was reaped
    /// (child killed / socket shut down). Counted separately so tests
    /// can assert the timeout path specifically was exercised.
    TimedOut,
    /// Anything else: I/O error, bad exit status, failed spawn.
    Failed(String),
}

impl std::fmt::Display for TransportFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportFailure::TimedOut => write!(f, "worker timed out"),
            TransportFailure::Failed(what) => write!(f, "{what}"),
        }
    }
}

/// A coordinator's link to one worker, whatever carries the bytes.
///
/// The contract mirrors the protocol's shape: exactly one
/// [`send_frame`](Self::send_frame) (the assignment, after which
/// end-of-frame is signalled to the peer), then exactly one
/// [`collect_frame`](Self::collect_frame) (the complete result stream,
/// or a failure after which the peer has been reaped). Implementations
/// start their reader eagerly at `send_frame`, so workers on different
/// links compute concurrently while the coordinator collects in chunk
/// order.
pub trait FrameTransport {
    /// Ships the encoded assignment frame and signals end-of-frame.
    ///
    /// # Errors
    ///
    /// Returns a [`ShardError`] when the link is already known dead;
    /// transports whose failures only surface later (the pipe) report
    /// them at [`collect_frame`](Self::collect_frame) instead.
    fn send_frame(&mut self, frame: &[u8]) -> Result<(), ShardError>;

    /// Waits up to `timeout` for the peer's complete result stream.
    ///
    /// # Errors
    ///
    /// [`TransportFailure::TimedOut`] when the deadline fired (the peer
    /// has been reaped), [`TransportFailure::Failed`] for every other
    /// way a worker can disappoint.
    fn collect_frame(&mut self, timeout: Duration) -> Result<Vec<u8>, TransportFailure>;
}

/// Why a chunk could not be obtained from a worker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChunkFailure {
    /// The transport deadline fired.
    TimedOut,
    /// Transport failure or an invalid / wrong-length result stream.
    Failed(String),
}

/// Collects and decodes one chunk from a worker link: the coordinator's
/// per-chunk protocol step, shared by the pipe executor and the
/// campaign server's socket fan-out.
///
/// # Errors
///
/// [`ChunkFailure::TimedOut`] when the transport deadline fired,
/// [`ChunkFailure::Failed`] for transport errors and for result streams
/// that do not decode to exactly `expected` records.
pub fn collect_chunk(
    link: &mut dyn FrameTransport,
    expected: usize,
    timeout: Duration,
) -> Result<Vec<RunRecord>, ChunkFailure> {
    let bytes = link.collect_frame(timeout).map_err(|f| match f {
        TransportFailure::TimedOut => ChunkFailure::TimedOut,
        TransportFailure::Failed(what) => ChunkFailure::Failed(what),
    })?;
    crate::protocol::decode_results(&bytes, expected)
        .map_err(|e| ChunkFailure::Failed(e.to_string()))
}

/// The child-process pipe transport: re-execs the current binary with
/// [`crate::WORKER_FLAG`] and speaks the frame protocol over its
/// stdin/stdout.
#[derive(Debug)]
pub struct PipeTransport {
    child: Child,
    rx: Option<mpsc::Receiver<std::io::Result<Vec<u8>>>>,
}

impl PipeTransport {
    /// Spawns the worker process (not yet assigned).
    ///
    /// # Errors
    ///
    /// Returns the spawn error when the binary cannot be re-executed.
    pub fn spawn(exe: &std::path::Path) -> Result<Self, ShardError> {
        let child = Command::new(exe)
            .arg(crate::WORKER_FLAG)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()?;
        Ok(Self { child, rx: None })
    }
}

impl FrameTransport for PipeTransport {
    fn send_frame(&mut self, frame: &[u8]) -> Result<(), ShardError> {
        // The assignment is a few dozen bytes — far below the pipe
        // buffer — so write-then-close cannot deadlock against the
        // child's own writes. A failed write means the child is already
        // gone; collection will notice and fall back.
        if let Some(mut stdin) = self.child.stdin.take() {
            let _ = stdin.write_all(frame);
        }
        let Some(mut stdout) = self.child.stdout.take() else {
            let _ = self.child.kill();
            let _ = self.child.wait();
            return Err(ShardError::Io("worker stdout not captured".into()));
        };
        let (tx, rx) = mpsc::channel();
        std::thread::spawn(move || {
            let mut buf = Vec::new();
            let result = stdout.read_to_end(&mut buf).map(|_| buf);
            let _ = tx.send(result);
        });
        self.rx = Some(rx);
        Ok(())
    }

    fn collect_frame(&mut self, timeout: Duration) -> Result<Vec<u8>, TransportFailure> {
        let Some(rx) = self.rx.take() else {
            return Err(TransportFailure::Failed(
                "no assignment was sent on this link".into(),
            ));
        };
        let bytes = match rx.recv_timeout(timeout) {
            Ok(Ok(bytes)) => bytes,
            Ok(Err(e)) => {
                let _ = self.child.kill();
                let _ = self.child.wait();
                return Err(TransportFailure::Failed(e.to_string()));
            }
            Err(_) => {
                let _ = self.child.kill();
                let _ = self.child.wait();
                return Err(TransportFailure::TimedOut);
            }
        };
        let status = self
            .child
            .wait()
            .map_err(|e| TransportFailure::Failed(e.to_string()))?;
        if !status.success() {
            return Err(TransportFailure::Failed(format!(
                "worker exited with {status}"
            )));
        }
        Ok(bytes)
    }
}

/// The socket transport: speaks the frame protocol to a socket worker
/// over one `TcpStream` per chunk. End-of-assignment is the write-half
/// shutdown; end-of-results is the worker closing the connection.
#[derive(Debug)]
pub struct TcpTransport {
    stream: TcpStream,
    rx: Option<mpsc::Receiver<std::io::Result<Vec<u8>>>>,
}

impl TcpTransport {
    /// Connects to a socket worker.
    ///
    /// # Errors
    ///
    /// Returns the connect error when the worker is unreachable.
    pub fn connect(addr: SocketAddr) -> Result<Self, ShardError> {
        Ok(Self {
            stream: TcpStream::connect(addr)?,
            rx: None,
        })
    }
}

impl FrameTransport for TcpTransport {
    fn send_frame(&mut self, frame: &[u8]) -> Result<(), ShardError> {
        self.stream.write_all(frame)?;
        self.stream.flush()?;
        // The worker reads the assignment to end-of-stream, exactly as
        // the pipe worker reads its closed stdin.
        self.stream.shutdown(Shutdown::Write)?;
        let mut reader = self.stream.try_clone()?;
        let (tx, rx) = mpsc::channel();
        std::thread::spawn(move || {
            let mut buf = Vec::new();
            let result = reader.read_to_end(&mut buf).map(|_| buf);
            let _ = tx.send(result);
        });
        self.rx = Some(rx);
        Ok(())
    }

    fn collect_frame(&mut self, timeout: Duration) -> Result<Vec<u8>, TransportFailure> {
        let Some(rx) = self.rx.take() else {
            return Err(TransportFailure::Failed(
                "no assignment was sent on this link".into(),
            ));
        };
        match rx.recv_timeout(timeout) {
            Ok(Ok(bytes)) => Ok(bytes),
            Ok(Err(e)) => Err(TransportFailure::Failed(e.to_string())),
            Err(_) => {
                // Reap the connection so the abandoned reader thread
                // unblocks; the worker sees a reset and moves on.
                let _ = self.stream.shutdown(Shutdown::Both);
                Err(TransportFailure::TimedOut)
            }
        }
    }
}

/// Announces a worker's listening address to a coordinator's control
/// port with a `"SHRG"` registration frame.
///
/// # Errors
///
/// Returns an I/O [`ShardError`] when the coordinator is unreachable.
pub fn announce_worker(coordinator: SocketAddr, worker: SocketAddr) -> Result<(), ShardError> {
    let mut stream = TcpStream::connect(coordinator)?;
    let text = worker.to_string();
    let mut frame = Vec::with_capacity(16 + text.len());
    frame.extend_from_slice(REGISTER_MAGIC);
    frame.put_u8(crate::protocol::PROTOCOL_VERSION);
    frame.put_u32(text.len() as u32);
    frame.extend_from_slice(text.as_bytes());
    stream.write_all(&frame)?;
    stream.flush()?;
    stream.shutdown(Shutdown::Write)?;
    Ok(())
}

/// Reads one `"SHRG"` registration frame from an accepted control
/// connection and returns the announced worker address.
///
/// # Errors
///
/// Returns [`ShardError::Protocol`] for malformed frames and
/// [`ShardError::Io`] for connection failures.
pub fn read_announcement(stream: &mut TcpStream) -> Result<SocketAddr, ShardError> {
    stream.set_read_timeout(Some(WORKER_READ_TIMEOUT))?;
    let mut bytes = Vec::new();
    stream.read_to_end(&mut bytes)?;
    let mut r = ByteReader::new(&bytes);
    if r.take(4)? != REGISTER_MAGIC {
        return Err(ShardError::Protocol("bad registration magic".into()));
    }
    let version = r.u8()?;
    if version != crate::protocol::PROTOCOL_VERSION {
        return Err(ShardError::Protocol(format!(
            "unsupported protocol version {version}"
        )));
    }
    let len = r.u32()? as usize;
    let text = String::from_utf8(r.take(len)?.to_vec())
        .map_err(|_| ShardError::Protocol("worker address is not UTF-8".into()))?;
    if r.remaining() != 0 {
        return Err(ShardError::Protocol(format!(
            "{} trailing bytes after registration",
            r.remaining()
        )));
    }
    text.parse()
        .map_err(|_| ShardError::Protocol(format!("unparseable worker address `{text}`")))
}

/// Serves assignments on `listener` forever: one chunk per accepted
/// connection, each answered through the shared
/// [`serve_stream`](crate::protocol::serve_stream). Per-connection
/// errors (malformed frames, refused fingerprints, injected kills) are
/// confined to their connection — the coordinator sees a truncated or
/// empty stream and falls back; the loop keeps serving.
pub fn serve_connections(listener: &TcpListener, registry: &CampaignRegistry) {
    for conn in listener.incoming() {
        let Ok(stream) = conn else { continue };
        let _ = serve_one(stream, registry);
    }
}

fn serve_one(stream: TcpStream, registry: &CampaignRegistry) -> Result<ServeOutcome, ShardError> {
    stream.set_read_timeout(Some(WORKER_READ_TIMEOUT))?;
    let mut reader = stream.try_clone()?;
    let mut writer = &stream;
    let outcome = serve_stream(&mut reader, &mut writer, registry);
    if let Err(e) = &outcome {
        eprintln!("socket worker: {e}");
    }
    // Dropping the stream closes the connection: for a completed chunk
    // that is the result stream's end-of-stream; for an injected kill it
    // is the mid-protocol death the coordinator must recover from.
    outcome
}

/// Runs a socket worker to completion: binds an ephemeral loopback
/// listener, announces it to `coordinator`, and serves assignments
/// until the process dies.
///
/// # Errors
///
/// Returns the bind/announce error; the serve loop itself never
/// returns.
pub fn run_socket_worker(
    coordinator: SocketAddr,
    registry: &CampaignRegistry,
) -> Result<(), ShardError> {
    let listener = TcpListener::bind(("127.0.0.1", 0))?;
    let me = listener.local_addr()?;
    announce_worker(coordinator, me)?;
    serve_connections(&listener, registry);
    Ok(())
}

/// Enters socket-worker mode — and never returns — when
/// [`LISTEN_FLAG`] is on the command line; otherwise does nothing.
///
/// Host binaries that spawn socket workers by re-exec (the campaign
/// server example, the campaignd determinism test) must call this first
/// thing in `main`, exactly like [`crate::worker_main_if_requested`]
/// for pipe workers. The flag's value is the coordinator's control
/// address: `--shard-listen 127.0.0.1:9000` or
/// `--shard-listen=127.0.0.1:9000`.
pub fn socket_worker_main_if_requested(registry: &CampaignRegistry) {
    let mut args = std::env::args();
    let coordinator = loop {
        let Some(arg) = args.next() else { return };
        if arg == LISTEN_FLAG {
            break args.next().unwrap_or_default();
        }
        if let Some(v) = arg.strip_prefix("--shard-listen=") {
            break v.to_owned();
        }
    };
    let code = match coordinator.parse::<SocketAddr>() {
        Ok(addr) => match run_socket_worker(addr, registry) {
            Ok(()) => 0,
            Err(e) => {
                eprintln!("shard socket worker: {e}");
                3
            }
        },
        Err(_) => {
            eprintln!("shard socket worker: unparseable coordinator address `{coordinator}`");
            2
        }
    };
    std::process::exit(code);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{compute_chunk, encode_assignment, grid_offsets, Assignment, FLAT_GRID};
    use its_testbed::campaign::{grid_fingerprint, CampaignSpec};
    use its_testbed::ScenarioConfig;

    fn demo_grid() -> Vec<CampaignSpec> {
        vec![CampaignSpec::new(
            ScenarioConfig {
                seed: 7100,
                ..ScenarioConfig::default()
            },
            4,
        )]
    }

    fn registry() -> CampaignRegistry {
        CampaignRegistry::new().register("demo", demo_grid)
    }

    /// Boots an in-process socket worker thread; returns its address.
    fn spawn_worker_thread() -> SocketAddr {
        let listener = TcpListener::bind(("127.0.0.1", 0)).expect("bind worker");
        let addr = listener.local_addr().expect("worker addr");
        std::thread::spawn(move || serve_connections(&listener, &registry()));
        addr
    }

    fn assignment(lo: u64, hi: u64) -> Assignment {
        Assignment {
            worker_index: 0,
            campaign: "demo".into(),
            grid_fp: grid_fingerprint(&demo_grid()),
            spec_index: FLAT_GRID,
            lo,
            hi,
        }
    }

    #[test]
    fn tcp_transport_runs_a_chunk_end_to_end() {
        let addr = spawn_worker_thread();
        let mut link = TcpTransport::connect(addr).expect("connect");
        link.send_frame(&encode_assignment(&assignment(1, 3)))
            .expect("send");
        let records = collect_chunk(&mut link, 2, Duration::from_secs(60)).expect("collect");
        assert_eq!(
            records,
            compute_chunk(&demo_grid(), FLAT_GRID, 1, 3).unwrap()
        );
    }

    #[test]
    fn tcp_worker_serves_consecutive_connections() {
        let addr = spawn_worker_thread();
        let grid = demo_grid();
        let total = *grid_offsets(&grid).last().unwrap();
        for lo in 0..total as u64 {
            let mut link = TcpTransport::connect(addr).expect("connect");
            link.send_frame(&encode_assignment(&assignment(lo, lo + 1)))
                .expect("send");
            let records = collect_chunk(&mut link, 1, Duration::from_secs(60)).expect("collect");
            assert_eq!(
                records,
                compute_chunk(&grid, FLAT_GRID, lo as usize, lo as usize + 1).unwrap()
            );
        }
    }

    #[test]
    fn wrong_expected_count_is_a_chunk_failure_not_a_panic() {
        let addr = spawn_worker_thread();
        let mut link = TcpTransport::connect(addr).expect("connect");
        link.send_frame(&encode_assignment(&assignment(0, 2)))
            .expect("send");
        let err = collect_chunk(&mut link, 3, Duration::from_secs(60)).unwrap_err();
        assert!(matches!(err, ChunkFailure::Failed(_)));
    }

    #[test]
    fn collect_without_send_fails_cleanly() {
        let addr = spawn_worker_thread();
        let mut link = TcpTransport::connect(addr).expect("connect");
        assert!(matches!(
            link.collect_frame(Duration::from_millis(100)),
            Err(TransportFailure::Failed(_))
        ));
    }

    #[test]
    fn announcement_roundtrips_over_a_control_socket() {
        let ctrl = TcpListener::bind(("127.0.0.1", 0)).expect("bind ctrl");
        let ctrl_addr = ctrl.local_addr().expect("ctrl addr");
        let announced: SocketAddr = "127.0.0.1:45678".parse().unwrap();
        let sender = std::thread::spawn(move || announce_worker(ctrl_addr, announced));
        let (mut conn, _) = ctrl.accept().expect("accept");
        let got = read_announcement(&mut conn).expect("read announcement");
        sender.join().expect("join").expect("announce");
        assert_eq!(got, announced);
    }

    #[test]
    fn malformed_announcement_is_rejected() {
        let ctrl = TcpListener::bind(("127.0.0.1", 0)).expect("bind ctrl");
        let ctrl_addr = ctrl.local_addr().expect("ctrl addr");
        let sender = std::thread::spawn(move || {
            let mut s = TcpStream::connect(ctrl_addr).expect("connect");
            s.write_all(b"nonsense").expect("write");
            s.shutdown(Shutdown::Write).expect("shutdown");
        });
        let (mut conn, _) = ctrl.accept().expect("accept");
        assert!(read_announcement(&mut conn).is_err());
        sender.join().expect("join");
    }
}
