//! Raw bit-stream writer and reader.
//!
//! UPER is an *unaligned* encoding: fields occupy exactly as many bits as
//! their constraints require and are packed back to back with no padding
//! between them. These two types provide that substrate; the field-level
//! encodings live in [`crate::fields`].

use crate::error::UperError;
use crate::Result;

/// Append-only bit stream, most-significant bit first within each byte.
///
/// # Example
///
/// ```
/// use uper::BitWriter;
///
/// let mut w = BitWriter::new();
/// w.write_bits(0b101, 3);
/// w.write_bool(true);
/// assert_eq!(w.bit_len(), 4);
/// let bytes = w.finish();
/// assert_eq!(bytes, vec![0b1011_0000]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Number of bits already used in the final byte (0..8).
    used: u8,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a writer over a cleared, caller-owned buffer, so its
    /// capacity is reused instead of allocating ([`crate::encode_into`]).
    pub fn over(mut bytes: Vec<u8>) -> Self {
        bytes.clear();
        Self { bytes, used: 0 }
    }

    /// Number of bits written so far.
    pub fn bit_len(&self) -> usize {
        if self.bytes.is_empty() {
            0
        } else {
            (self.bytes.len() - 1) * 8 + usize::from(self.used)
        }
    }

    /// Appends a single boolean as one bit.
    pub fn write_bool(&mut self, value: bool) {
        self.write_bits(u64::from(value), 1);
    }

    /// Appends the `count` least-significant bits of `value`, MSB first.
    ///
    /// Splices whole bytes at a time: the partial tail byte is topped up
    /// first, then full bytes of `value` are pushed directly, then any
    /// leftover high bits open a fresh byte. Byte-identical to writing
    /// the bits one at a time.
    ///
    /// # Panics
    ///
    /// Panics if `count > 64`.
    pub fn write_bits(&mut self, value: u64, count: u32) {
        assert!(count <= 64, "cannot write more than 64 bits at once");
        if count == 0 {
            return;
        }
        let value = if count == 64 {
            value
        } else {
            value & ((1u64 << count) - 1)
        };
        let mut rem = count;
        // Top up the partially-used tail byte.
        if !self.bytes.is_empty() && self.used < 8 {
            let free = 8 - u32::from(self.used);
            let take = rem.min(free);
            let chunk = (value >> (rem - take)) & ((1u64 << take) - 1);
            if let Some(last) = self.bytes.last_mut() {
                *last |= (chunk as u8) << (free - take);
            }
            self.used += take as u8;
            rem -= take;
        }
        // Whole bytes straight from the value.
        while rem >= 8 {
            rem -= 8;
            self.bytes.push((value >> rem) as u8);
            self.used = 8;
        }
        // Leftover high bits open a fresh, right-padded byte.
        if rem > 0 {
            let chunk = (value & ((1u64 << rem) - 1)) as u8;
            self.bytes.push(chunk << (8 - rem));
            self.used = rem as u8;
        }
    }

    /// Appends a whole byte slice (bit-aligned to the current position).
    ///
    /// When the writer is byte-aligned this is a single `memcpy`; the
    /// unaligned case splices each byte across the boundary.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        if bytes.is_empty() {
            return;
        }
        if self.bytes.is_empty() || self.used == 8 {
            self.bytes.extend_from_slice(bytes);
            self.used = 8;
        } else {
            for &b in bytes {
                self.write_bits(u64::from(b), 8);
            }
        }
    }

    /// Consumes the writer, returning the packed bytes.
    ///
    /// The final byte is zero-padded on the right, as in UPER framing.
    pub fn finish(self) -> Vec<u8> {
        self.bytes
    }
}

/// Sequential reader over a packed bit stream produced by [`BitWriter`].
///
/// # Example
///
/// ```
/// use uper::{BitReader, BitWriter};
///
/// # fn main() -> Result<(), uper::UperError> {
/// let mut w = BitWriter::new();
/// w.write_bits(0b1101, 4);
/// let bytes = w.finish();
/// let mut r = BitReader::new(&bytes);
/// assert_eq!(r.read_bits(4)?, 0b1101);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    /// Absolute bit cursor.
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `bytes`, starting at bit 0.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    /// Bits remaining until the end of the underlying slice.
    pub fn remaining(&self) -> usize {
        self.bytes.len() * 8 - self.pos
    }

    /// Current absolute bit position.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Reads one bit as a boolean.
    ///
    /// # Errors
    ///
    /// Returns [`UperError::UnexpectedEnd`] at end of stream.
    pub fn read_bool(&mut self) -> Result<bool> {
        Ok(self.read_bits(1)? == 1)
    }

    /// Reads `count` bits MSB-first into the low bits of a `u64`.
    ///
    /// # Errors
    ///
    /// Returns [`UperError::UnexpectedEnd`] if fewer than `count` bits
    /// remain.
    ///
    /// # Panics
    ///
    /// Panics if `count > 64`.
    pub fn read_bits(&mut self, count: u32) -> Result<u64> {
        assert!(count <= 64, "cannot read more than 64 bits at once");
        // The shortage check runs before any cursor movement, so a failed
        // read consumes nothing.
        if self.remaining() < count as usize {
            return Err(UperError::UnexpectedEnd {
                requested: count as usize,
                remaining: self.remaining(),
            });
        }
        if count == 0 {
            return Ok(0);
        }
        let mut out = 0u64;
        let mut rem = count;
        let mut idx = self.pos / 8;
        let lead = (self.pos % 8) as u32;
        // Tail of the partially-consumed lead byte.
        if lead != 0 {
            let avail = 8 - lead;
            let take = rem.min(avail);
            let byte = u32::from(self.bytes[idx]);
            out = u64::from((byte >> (avail - take)) & ((1u32 << take) - 1));
            rem -= take;
            idx += 1;
        }
        // Whole bytes.
        while rem >= 8 {
            out = (out << 8) | u64::from(self.bytes[idx]);
            idx += 1;
            rem -= 8;
        }
        // Leading bits of the final byte.
        if rem > 0 {
            let byte = u32::from(self.bytes[idx]);
            out = (out << rem) | u64::from((byte >> (8 - rem)) & ((1u32 << rem) - 1));
        }
        self.pos += count as usize;
        Ok(out)
    }

    /// Reads `len` whole bytes from the (possibly unaligned) stream.
    ///
    /// At byte-aligned positions this is a single slice copy.
    ///
    /// # Errors
    ///
    /// Returns [`UperError::UnexpectedEnd`] if the stream is too short; a
    /// failed read consumes nothing.
    pub fn read_bytes(&mut self, len: usize) -> Result<Vec<u8>> {
        let needed = len * 8;
        if self.remaining() < needed {
            return Err(UperError::UnexpectedEnd {
                requested: needed,
                remaining: self.remaining(),
            });
        }
        if self.pos % 8 == 0 {
            let start = self.pos / 8;
            self.pos += needed;
            return Ok(self.bytes[start..start + len].to_vec());
        }
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.read_bits(8)? as u8);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// The original bit-at-a-time writer/reader, kept as the reference
    /// the word-level implementation is property-tested against.
    mod reference {
        use super::super::{Result, UperError};

        #[derive(Default)]
        pub struct RefWriter {
            bytes: Vec<u8>,
            used: u8,
        }

        impl RefWriter {
            pub fn write_bits(&mut self, value: u64, count: u32) {
                for i in (0..count).rev() {
                    self.push_bit((value >> i) & 1 == 1);
                }
            }

            pub fn write_bytes(&mut self, bytes: &[u8]) {
                for &b in bytes {
                    self.write_bits(u64::from(b), 8);
                }
            }

            fn push_bit(&mut self, bit: bool) {
                if self.bytes.is_empty() || self.used == 8 {
                    self.bytes.push(0);
                    self.used = 0;
                }
                if bit {
                    if let Some(last) = self.bytes.last_mut() {
                        *last |= 1 << (7 - self.used);
                    }
                }
                self.used += 1;
            }

            pub fn finish(self) -> Vec<u8> {
                self.bytes
            }
        }

        pub struct RefReader<'a> {
            bytes: &'a [u8],
            pos: usize,
        }

        impl<'a> RefReader<'a> {
            pub fn new(bytes: &'a [u8]) -> Self {
                Self { bytes, pos: 0 }
            }

            pub fn remaining(&self) -> usize {
                self.bytes.len() * 8 - self.pos
            }

            pub fn read_bits(&mut self, count: u32) -> Result<u64> {
                if self.remaining() < count as usize {
                    return Err(UperError::UnexpectedEnd {
                        requested: count as usize,
                        remaining: self.remaining(),
                    });
                }
                let mut out = 0u64;
                for _ in 0..count {
                    let byte = self.bytes[self.pos / 8];
                    let bit = (byte >> (7 - (self.pos % 8))) & 1;
                    out = (out << 1) | u64::from(bit);
                    self.pos += 1;
                }
                Ok(out)
            }
        }
    }

    #[test]
    fn empty_writer_produces_no_bytes() {
        assert!(BitWriter::new().finish().is_empty());
        assert_eq!(BitWriter::new().bit_len(), 0);
    }

    #[test]
    fn single_bit_layout_is_msb_first() {
        let mut w = BitWriter::new();
        w.write_bool(true);
        assert_eq!(w.finish(), vec![0b1000_0000]);
    }

    #[test]
    fn crossing_byte_boundary() {
        let mut w = BitWriter::new();
        w.write_bits(0b1_1111, 5);
        w.write_bits(0b0001, 4); // crosses into second byte
        let bytes = w.finish();
        assert_eq!(bytes, vec![0b1111_1000, 0b1000_0000]);
    }

    #[test]
    fn write_zero_bits_is_noop() {
        let mut w = BitWriter::new();
        w.write_bits(0xFFFF, 0);
        assert_eq!(w.bit_len(), 0);
        assert!(w.finish().is_empty());
    }

    #[test]
    fn write_full_64_bits() {
        let mut w = BitWriter::new();
        w.write_bits(u64::MAX, 64);
        let bytes = w.finish();
        assert_eq!(bytes, vec![0xFF; 8]);
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(64).unwrap(), u64::MAX);
    }

    #[test]
    fn reader_end_of_stream() {
        let bytes = [0xAB];
        let mut r = BitReader::new(&bytes);
        r.read_bits(8).unwrap();
        let err = r.read_bits(1).unwrap_err();
        assert!(matches!(err, UperError::UnexpectedEnd { .. }));
    }

    #[test]
    fn reader_tracks_position_and_remaining() {
        let bytes = [0x00, 0x00];
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.remaining(), 16);
        r.read_bits(5).unwrap();
        assert_eq!(r.position(), 5);
        assert_eq!(r.remaining(), 11);
    }

    #[test]
    fn bytes_roundtrip_unaligned() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        w.write_bytes(&[0xDE, 0xAD]);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(3).unwrap(), 0b101);
        assert_eq!(r.read_bytes(2).unwrap(), vec![0xDE, 0xAD]);
    }

    proptest! {
        #[test]
        fn bits_roundtrip(value in any::<u64>(), count in 0u32..=64) {
            let masked = if count == 64 { value } else { value & ((1u64 << count) - 1) };
            let mut w = BitWriter::new();
            w.write_bits(masked, count);
            let bytes = w.finish();
            let mut r = BitReader::new(&bytes);
            prop_assert_eq!(r.read_bits(count).unwrap(), masked);
        }

        #[test]
        fn many_fields_roundtrip(fields in proptest::collection::vec((any::<u64>(), 1u32..=64), 0..32)) {
            let mut w = BitWriter::new();
            let mut expected = Vec::new();
            for &(v, c) in &fields {
                let masked = if c == 64 { v } else { v & ((1u64 << c) - 1) };
                w.write_bits(masked, c);
                expected.push((masked, c));
            }
            let total: usize = fields.iter().map(|&(_, c)| c as usize).sum();
            prop_assert_eq!(w.bit_len(), total);
            let bytes = w.finish();
            let mut r = BitReader::new(&bytes);
            for (v, c) in expected {
                prop_assert_eq!(r.read_bits(c).unwrap(), v);
            }
        }

        #[test]
        fn arbitrary_read_sequences_never_panic(
            buf in proptest::collection::vec(any::<u8>(), 0..24),
            ops in proptest::collection::vec(0u32..=64, 0..24),
        ) {
            // Reads over arbitrary buffers are total: each op either
            // yields Ok (enough bits remained) or UnexpectedEnd — never a
            // panic — and the position/remaining bookkeeping stays exact.
            let mut r = BitReader::new(&buf);
            for &count in &ops {
                let before = r.remaining();
                let pos = r.position();
                prop_assert_eq!(pos + before, buf.len() * 8);
                let enough = before >= count as usize;
                match r.read_bits(count) {
                    Ok(v) => {
                        prop_assert!(enough, "Ok with only {before} bits for {count}");
                        if count < 64 {
                            prop_assert!(v < (1u64 << count));
                        }
                        prop_assert_eq!(r.position(), pos + count as usize);
                    }
                    Err(UperError::UnexpectedEnd { requested, remaining }) => {
                        prop_assert!(!enough, "Err with {before} bits for {count}");
                        prop_assert_eq!(requested, count as usize);
                        prop_assert_eq!(remaining, before);
                        // A failed read must not consume anything.
                        prop_assert_eq!(r.position(), pos);
                    }
                    Err(other) => prop_assert!(false, "unexpected error {other:?}"),
                }
            }
        }

        #[test]
        fn read_bytes_errors_cleanly_when_short(
            buf in proptest::collection::vec(any::<u8>(), 0..8),
            skew in 0u32..8,
            len in 0usize..12,
        ) {
            let mut r = BitReader::new(&buf);
            let _ = r.read_bits(skew.min(buf.len() as u32 * 8));
            let enough = r.remaining() >= len * 8;
            match r.read_bytes(len) {
                Ok(bytes) => {
                    prop_assert!(enough);
                    prop_assert_eq!(bytes.len(), len);
                }
                Err(UperError::UnexpectedEnd { .. }) => prop_assert!(!enough),
                Err(other) => prop_assert!(false, "unexpected error {other:?}"),
            }
        }

        #[test]
        fn interleaved_bool_bits_bytes_roundtrip(
            flag in any::<bool>(),
            word in any::<u64>(),
            count in 1u32..=64,
            payload in proptest::collection::vec(any::<u8>(), 0..16),
        ) {
            let masked = if count == 64 { word } else { word & ((1u64 << count) - 1) };
            let mut w = BitWriter::new();
            w.write_bool(flag);
            w.write_bits(masked, count);
            w.write_bytes(&payload);
            let expected_bits = 1 + count as usize + payload.len() * 8;
            prop_assert_eq!(w.bit_len(), expected_bits);
            let bytes = w.finish();
            // The writer never emits a fully-unused trailing byte.
            prop_assert_eq!(bytes.len(), expected_bits.div_ceil(8));
            let mut r = BitReader::new(&bytes);
            prop_assert_eq!(r.read_bool().unwrap(), flag);
            prop_assert_eq!(r.read_bits(count).unwrap(), masked);
            prop_assert_eq!(r.read_bytes(payload.len()).unwrap(), payload);
            // Only right-padding of the final byte may remain.
            prop_assert!(r.remaining() < 8);
        }

        #[test]
        fn word_level_writer_matches_bit_at_a_time_reference(
            fields in proptest::collection::vec(
                (0u8..3, any::<u64>(), 0u32..=64, proptest::collection::vec(any::<u8>(), 0..12)),
                0..24,
            ),
        ) {
            // The perf rewrite must be invisible on the wire: arbitrary
            // interleavings of bool/bits/bytes fields produce
            // byte-identical buffers from the word-level writer and the
            // original per-bit reference.
            let mut fast = BitWriter::new();
            let mut slow = reference::RefWriter::default();
            for &(kind, v, c, ref bytes) in &fields {
                match kind {
                    0 => {
                        fast.write_bool(v & 1 == 1);
                        slow.write_bits(v & 1, 1);
                    }
                    1 => {
                        fast.write_bits(v, c);
                        slow.write_bits(if c == 64 { v } else { v & ((1u64 << c) - 1) }, c);
                    }
                    _ => {
                        fast.write_bytes(bytes);
                        slow.write_bytes(bytes);
                    }
                }
            }
            prop_assert_eq!(fast.finish(), slow.finish());
        }

        #[test]
        fn word_level_reader_matches_bit_at_a_time_reference(
            buf in proptest::collection::vec(any::<u8>(), 0..24),
            ops in proptest::collection::vec(0u32..=64, 0..24),
        ) {
            // Same buffer, same op sequence: the word-level reader and
            // the per-bit reference agree on every value and on every
            // error's exact fields.
            let mut fast = BitReader::new(&buf);
            let mut slow = reference::RefReader::new(&buf);
            for &count in &ops {
                match (fast.read_bits(count), slow.read_bits(count)) {
                    (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
                    (
                        Err(UperError::UnexpectedEnd { requested: ra, remaining: ma }),
                        Err(UperError::UnexpectedEnd { requested: rb, remaining: mb }),
                    ) => {
                        prop_assert_eq!(ra, rb);
                        prop_assert_eq!(ma, mb);
                    }
                    (a, b) => prop_assert!(false, "diverged: {a:?} vs {b:?}"),
                }
                prop_assert_eq!(fast.remaining(), slow.remaining());
            }
        }
    }
}
