//! Field-level UPER encodings built on [`BitWriter`]/[`BitReader`].
//!
//! This module implements the subset of ITU-T X.691 used by the ETSI ITS
//! basic services:
//!
//! * constrained whole numbers (§11.5) — fixed bit width derived from the
//!   range,
//! * semi-constrained whole numbers with a length determinant (§11.7),
//! * normally-small non-negative numbers for extension markers (§11.6),
//! * length determinants up to 64K (§11.9),
//! * enumerations, `OPTIONAL` presence bitmaps, `SEQUENCE OF`,
//! * IA5String / UTF8String with size constraints.

use crate::bits::{BitReader, BitWriter};
use crate::error::UperError;
use crate::Result;

/// Inclusive size constraint for strings and `SEQUENCE OF`.
///
/// # Example
///
/// ```
/// use uper::SizeRange;
/// let sr = SizeRange::new(1, 40);
/// assert_eq!(sr.min(), 1);
/// assert_eq!(sr.max(), 40);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl SizeRange {
    /// Creates a size range `[min, max]`.
    ///
    /// # Panics
    ///
    /// Panics if `min > max`.
    pub fn new(min: usize, max: usize) -> Self {
        assert!(min <= max, "size range min must not exceed max");
        Self { min, max }
    }

    /// Lower bound (inclusive).
    pub fn min(&self) -> usize {
        self.min
    }

    /// Upper bound (inclusive).
    pub fn max(&self) -> usize {
        self.max
    }

    /// Whether the range pins the size to a single value.
    pub fn is_fixed(&self) -> bool {
        self.min == self.max
    }
}

/// Number of bits needed to represent values `0..=range`.
fn bits_for_range(range: u128) -> u32 {
    if range == 0 {
        0
    } else {
        128 - range.leading_zeros()
    }
}

/// Trait for types that encode themselves with UPER.
///
/// Implemented by every CAM/DENM container in the `its-messages` crate.
/// See [`crate::encode`] for a worked example.
pub trait Codec: Sized {
    /// Appends this value's encoding to `w`.
    ///
    /// # Errors
    ///
    /// Implementations return an error when the value violates its ASN.1
    /// constraints.
    fn encode(&self, w: &mut BitWriter) -> Result<()>;

    /// Reads a value of this type from `r`.
    ///
    /// # Errors
    ///
    /// Implementations return an error on truncated input or constraint
    /// violations.
    fn decode(r: &mut BitReader<'_>) -> Result<Self>;
}

impl BitWriter {
    /// Writes a constrained whole number in `[min, max]` (X.691 §11.5).
    ///
    /// # Errors
    ///
    /// [`UperError::OutOfRange`] if `value` is outside the range, or
    /// [`UperError::BadConstraint`] if `min > max`.
    pub fn write_constrained_u64(&mut self, value: u64, min: u64, max: u64) -> Result<()> {
        if min > max {
            return Err(UperError::BadConstraint {
                min: min as i128,
                max: max as i128,
            });
        }
        if value < min || value > max {
            return Err(UperError::OutOfRange {
                value: value as i128,
                min: min as i128,
                max: max as i128,
            });
        }
        let bits = bits_for_range((max - min) as u128);
        self.write_bits(value - min, bits);
        Ok(())
    }

    /// Writes a constrained signed whole number in `[min, max]`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`BitWriter::write_constrained_u64`].
    pub fn write_constrained_i64(&mut self, value: i64, min: i64, max: i64) -> Result<()> {
        if min > max {
            return Err(UperError::BadConstraint {
                min: min as i128,
                max: max as i128,
            });
        }
        if value < min || value > max {
            return Err(UperError::OutOfRange {
                value: value as i128,
                min: min as i128,
                max: max as i128,
            });
        }
        let range = (max as i128 - min as i128) as u128;
        let bits = bits_for_range(range);
        self.write_bits((value as i128 - min as i128) as u64, bits);
        Ok(())
    }

    /// Writes a general length determinant (X.691 §11.9, values < 64K).
    ///
    /// # Errors
    ///
    /// [`UperError::LengthTooLarge`] if `len >= 65536`.
    pub fn write_length(&mut self, len: usize) -> Result<()> {
        if len < 128 {
            // single byte, top bit 0
            self.write_bits(len as u64, 8);
            Ok(())
        } else if len < 16384 {
            // two bytes, top bits 10
            self.write_bits(0b10, 2);
            self.write_bits(len as u64, 14);
            Ok(())
        } else if len < 65536 {
            // We do not implement fragmentation; encode as 11 + 16-bit raw.
            // Real UPER would fragment here, but ITS messages never reach
            // this size on the 802.11p MTU.
            self.write_bits(0b11, 2);
            self.write_bits(len as u64, 16);
            Ok(())
        } else {
            Err(UperError::LengthTooLarge(len))
        }
    }

    /// Writes a semi-constrained whole number `value >= min` (X.691 §11.7).
    ///
    /// # Errors
    ///
    /// [`UperError::OutOfRange`] if `value < min`.
    pub fn write_semi_constrained_u64(&mut self, value: u64, min: u64) -> Result<()> {
        if value < min {
            return Err(UperError::OutOfRange {
                value: value as i128,
                min: min as i128,
                max: i128::MAX,
            });
        }
        let offset = value - min;
        let byte_len = if offset == 0 {
            1
        } else {
            ((64 - offset.leading_zeros()) as usize).div_ceil(8)
        };
        self.write_length(byte_len)?;
        for i in (0..byte_len).rev() {
            self.write_bits((offset >> (i * 8)) & 0xFF, 8);
        }
        Ok(())
    }

    /// Writes an enumerated value with `variants` total variants.
    ///
    /// # Errors
    ///
    /// [`UperError::OutOfRange`] if `index >= variants`.
    pub fn write_enumerated(&mut self, index: u64, variants: u64) -> Result<()> {
        if variants == 0 || index >= variants {
            return Err(UperError::OutOfRange {
                value: index as i128,
                min: 0,
                max: variants.saturating_sub(1) as i128,
            });
        }
        self.write_constrained_u64(index, 0, variants - 1)
    }

    /// Writes a size-constrained octet string.
    ///
    /// # Errors
    ///
    /// [`UperError::OutOfRange`] if the length violates `size`.
    pub fn write_octet_string(&mut self, bytes: &[u8], size: SizeRange) -> Result<()> {
        self.write_size(bytes.len(), size)?;
        self.write_bytes(bytes);
        Ok(())
    }

    /// Writes an IA5String (7-bit characters) with a size constraint.
    ///
    /// # Errors
    ///
    /// [`UperError::InvalidCharacter`] for non-ASCII input,
    /// [`UperError::OutOfRange`] for a size violation.
    pub fn write_ia5_string(&mut self, s: &str, size: SizeRange) -> Result<()> {
        self.write_size(s.len(), size)?;
        for c in s.chars() {
            let v = c as u32;
            if v > 0x7F {
                return Err(UperError::InvalidCharacter(v));
            }
            self.write_bits(u64::from(v), 7);
        }
        Ok(())
    }

    /// Writes a UTF8String with a size constraint on the *byte* length.
    ///
    /// # Errors
    ///
    /// [`UperError::OutOfRange`] for a size violation.
    pub fn write_utf8_string(&mut self, s: &str, size: SizeRange) -> Result<()> {
        self.write_size(s.len(), size)?;
        self.write_bytes(s.as_bytes());
        Ok(())
    }

    /// Writes the length prefix for a `SEQUENCE OF` with the given size
    /// constraint, then the caller writes each element.
    ///
    /// # Errors
    ///
    /// [`UperError::OutOfRange`] if `len` violates `size`.
    pub fn write_size(&mut self, len: usize, size: SizeRange) -> Result<()> {
        if len < size.min() || len > size.max() {
            return Err(UperError::OutOfRange {
                value: len as i128,
                min: size.min() as i128,
                max: size.max() as i128,
            });
        }
        if size.is_fixed() {
            return Ok(()); // fixed size: no determinant on the wire
        }
        self.write_constrained_u64(len as u64, size.min() as u64, size.max() as u64)
    }
}

impl BitWriter {
    /// Writes a fixed-size BIT STRING (e.g. `ExteriorLights ::= BIT
    /// STRING (SIZE(8))`): the `count` low bits of `bits`, MSB first.
    ///
    /// # Errors
    ///
    /// [`UperError::OutOfRange`] if `bits` has set bits above `count`.
    pub fn write_bit_string(&mut self, bits: u64, count: u32) -> Result<()> {
        if count < 64 && bits >> count != 0 {
            return Err(UperError::OutOfRange {
                value: bits as i128,
                min: 0,
                max: ((1u128 << count) - 1) as i128,
            });
        }
        self.write_bits(bits, count);
        Ok(())
    }

    /// Writes an ASN.1 extension marker bit (`...` in the module): `false`
    /// for the root alternatives, `true` for an extension addition.
    pub fn write_extension_marker(&mut self, extended: bool) {
        self.write_bool(extended);
    }

    /// Writes a normally-small non-negative whole number (X.691 §11.6),
    /// used for extension addition indexes.
    ///
    /// # Errors
    ///
    /// [`UperError::LengthTooLarge`] for values ≥ 64 that overflow the
    /// semi-constrained fallback length determinant.
    pub fn write_normally_small(&mut self, value: u64) -> Result<()> {
        if value < 64 {
            self.write_bool(false);
            self.write_bits(value, 6);
            Ok(())
        } else {
            self.write_bool(true);
            self.write_semi_constrained_u64(value, 0)
        }
    }
}

impl BitReader<'_> {
    /// Reads a fixed-size BIT STRING written by
    /// [`BitWriter::write_bit_string`].
    ///
    /// # Errors
    ///
    /// [`UperError::UnexpectedEnd`] on truncation.
    pub fn read_bit_string(&mut self, count: u32) -> Result<u64> {
        self.read_bits(count)
    }

    /// Reads an extension marker bit.
    ///
    /// # Errors
    ///
    /// [`UperError::UnexpectedEnd`] on truncation.
    pub fn read_extension_marker(&mut self) -> Result<bool> {
        self.read_bool()
    }

    /// Reads a normally-small non-negative whole number.
    ///
    /// # Errors
    ///
    /// [`UperError::UnexpectedEnd`] on truncation.
    pub fn read_normally_small(&mut self) -> Result<u64> {
        if self.read_bool()? {
            self.read_semi_constrained_u64(0)
        } else {
            self.read_bits(6)
        }
    }
}

impl BitReader<'_> {
    /// Reads a constrained whole number in `[min, max]`.
    ///
    /// # Errors
    ///
    /// [`UperError::UnexpectedEnd`] on truncation, [`UperError::BadConstraint`]
    /// if `min > max`.
    pub fn read_constrained_u64(&mut self, min: u64, max: u64) -> Result<u64> {
        if min > max {
            return Err(UperError::BadConstraint {
                min: min as i128,
                max: max as i128,
            });
        }
        let bits = bits_for_range((max - min) as u128);
        let raw = self.read_bits(bits)?;
        let value = min.checked_add(raw).ok_or(UperError::OutOfRange {
            value: raw as i128 + min as i128,
            min: min as i128,
            max: max as i128,
        })?;
        if value > max {
            return Err(UperError::OutOfRange {
                value: value as i128,
                min: min as i128,
                max: max as i128,
            });
        }
        Ok(value)
    }

    /// Reads a constrained signed whole number in `[min, max]`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`BitReader::read_constrained_u64`].
    pub fn read_constrained_i64(&mut self, min: i64, max: i64) -> Result<i64> {
        if min > max {
            return Err(UperError::BadConstraint {
                min: min as i128,
                max: max as i128,
            });
        }
        let range = (max as i128 - min as i128) as u128;
        let bits = bits_for_range(range);
        let raw = self.read_bits(bits)? as i128;
        let value = min as i128 + raw;
        if value > max as i128 {
            return Err(UperError::OutOfRange {
                value,
                min: min as i128,
                max: max as i128,
            });
        }
        Ok(value as i64)
    }

    /// Reads a general length determinant written by
    /// [`BitWriter::write_length`].
    ///
    /// # Errors
    ///
    /// [`UperError::UnexpectedEnd`] on truncation.
    pub fn read_length(&mut self) -> Result<usize> {
        let first = self.read_bits(1)?;
        if first == 0 {
            Ok(self.read_bits(7)? as usize)
        } else {
            let second = self.read_bits(1)?;
            if second == 0 {
                Ok(self.read_bits(14)? as usize)
            } else {
                Ok(self.read_bits(16)? as usize)
            }
        }
    }

    /// Reads a semi-constrained whole number with lower bound `min`.
    ///
    /// # Errors
    ///
    /// [`UperError::UnexpectedEnd`] on truncation,
    /// [`UperError::LengthTooLarge`] if the offset does not fit in a `u64`.
    pub fn read_semi_constrained_u64(&mut self, min: u64) -> Result<u64> {
        let byte_len = self.read_length()?;
        if byte_len > 8 {
            return Err(UperError::LengthTooLarge(byte_len));
        }
        let mut offset = 0u64;
        for _ in 0..byte_len {
            offset = (offset << 8) | self.read_bits(8)?;
        }
        min.checked_add(offset).ok_or(UperError::OutOfRange {
            value: offset as i128 + min as i128,
            min: min as i128,
            max: u64::MAX as i128,
        })
    }

    /// Reads an enumerated index with `variants` total variants.
    ///
    /// # Errors
    ///
    /// [`UperError::UnexpectedEnd`] or [`UperError::OutOfRange`].
    pub fn read_enumerated(&mut self, variants: u64) -> Result<u64> {
        if variants == 0 {
            return Err(UperError::BadConstraint { min: 0, max: -1 });
        }
        self.read_constrained_u64(0, variants - 1)
    }

    /// Reads a size-constrained octet string.
    ///
    /// # Errors
    ///
    /// [`UperError::UnexpectedEnd`] or [`UperError::OutOfRange`].
    pub fn read_octet_string(&mut self, size: SizeRange) -> Result<Vec<u8>> {
        let len = self.read_size(size)?;
        self.read_bytes(len)
    }

    /// Reads an IA5String with a size constraint.
    ///
    /// # Errors
    ///
    /// [`UperError::UnexpectedEnd`], [`UperError::OutOfRange`], or
    /// [`UperError::InvalidCharacter`].
    pub fn read_ia5_string(&mut self, size: SizeRange) -> Result<String> {
        let len = self.read_size(size)?;
        let mut s = String::with_capacity(len);
        for _ in 0..len {
            let v = self.read_bits(7)? as u32;
            let c = char::from_u32(v).ok_or(UperError::InvalidCharacter(v))?;
            s.push(c);
        }
        Ok(s)
    }

    /// Reads a UTF8String with a size constraint on the byte length.
    ///
    /// # Errors
    ///
    /// [`UperError::UnexpectedEnd`], [`UperError::OutOfRange`], or
    /// [`UperError::InvalidCharacter`] for malformed UTF-8.
    pub fn read_utf8_string(&mut self, size: SizeRange) -> Result<String> {
        let len = self.read_size(size)?;
        let bytes = self.read_bytes(len)?;
        String::from_utf8(bytes).map_err(|e| {
            let bad = e.as_bytes().first().copied().unwrap_or(0);
            UperError::InvalidCharacter(u32::from(bad))
        })
    }

    /// Reads the size of a constrained string / `SEQUENCE OF`.
    ///
    /// # Errors
    ///
    /// [`UperError::UnexpectedEnd`] or [`UperError::OutOfRange`].
    pub fn read_size(&mut self, size: SizeRange) -> Result<usize> {
        if size.is_fixed() {
            return Ok(size.min());
        }
        Ok(self.read_constrained_u64(size.min() as u64, size.max() as u64)? as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bits_for_range_edges() {
        assert_eq!(bits_for_range(0), 0);
        assert_eq!(bits_for_range(1), 1);
        assert_eq!(bits_for_range(2), 2);
        assert_eq!(bits_for_range(255), 8);
        assert_eq!(bits_for_range(256), 9);
    }

    #[test]
    fn fixed_range_occupies_zero_bits() {
        let mut w = BitWriter::new();
        w.write_constrained_u64(7, 7, 7).unwrap();
        assert_eq!(w.bit_len(), 0);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_constrained_u64(7, 7).unwrap(), 7);
    }

    #[test]
    fn constrained_out_of_range_rejected() {
        let mut w = BitWriter::new();
        let err = w.write_constrained_u64(11, 0, 10).unwrap_err();
        assert!(matches!(err, UperError::OutOfRange { value: 11, .. }));
    }

    #[test]
    fn bad_constraint_rejected() {
        let mut w = BitWriter::new();
        assert!(matches!(
            w.write_constrained_u64(0, 5, 1),
            Err(UperError::BadConstraint { .. })
        ));
    }

    #[test]
    fn signed_roundtrip_negative_bounds() {
        let mut w = BitWriter::new();
        w.write_constrained_i64(-900000000, -900000000, 900000001)
            .unwrap();
        w.write_constrained_i64(900000001, -900000000, 900000001)
            .unwrap();
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(
            r.read_constrained_i64(-900000000, 900000001).unwrap(),
            -900000000
        );
        assert_eq!(
            r.read_constrained_i64(-900000000, 900000001).unwrap(),
            900000001
        );
    }

    #[test]
    fn length_determinant_bands() {
        for &len in &[0usize, 1, 127, 128, 129, 16383, 16384, 65535] {
            let mut w = BitWriter::new();
            w.write_length(len).unwrap();
            let bytes = w.finish();
            let mut r = BitReader::new(&bytes);
            assert_eq!(r.read_length().unwrap(), len, "len {len}");
        }
    }

    #[test]
    fn length_too_large_rejected() {
        let mut w = BitWriter::new();
        assert!(matches!(
            w.write_length(65536),
            Err(UperError::LengthTooLarge(65536))
        ));
    }

    #[test]
    fn semi_constrained_roundtrip() {
        for &(v, min) in &[(0u64, 0u64), (5, 5), (300, 0), (u64::MAX, 0), (1000, 999)] {
            let mut w = BitWriter::new();
            w.write_semi_constrained_u64(v, min).unwrap();
            let bytes = w.finish();
            let mut r = BitReader::new(&bytes);
            assert_eq!(r.read_semi_constrained_u64(min).unwrap(), v);
        }
    }

    #[test]
    fn semi_constrained_below_min_rejected() {
        let mut w = BitWriter::new();
        assert!(w.write_semi_constrained_u64(4, 5).is_err());
    }

    #[test]
    fn enumerated_roundtrip_and_bounds() {
        let mut w = BitWriter::new();
        w.write_enumerated(3, 5).unwrap();
        assert!(w.write_enumerated(5, 5).is_err());
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_enumerated(5).unwrap(), 3);
    }

    #[test]
    fn ia5_string_roundtrip() {
        let size = SizeRange::new(0, 32);
        let mut w = BitWriter::new();
        w.write_ia5_string("DENM-01", size).unwrap();
        let bytes = w.finish();
        // 7-bit chars: shorter than UTF-8 would be once length passes a byte
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_ia5_string(size).unwrap(), "DENM-01");
    }

    #[test]
    fn ia5_rejects_non_ascii() {
        let mut w = BitWriter::new();
        assert!(matches!(
            w.write_ia5_string("café", SizeRange::new(0, 32)),
            Err(UperError::InvalidCharacter(_))
        ));
    }

    #[test]
    fn utf8_string_roundtrip() {
        let size = SizeRange::new(0, 64);
        let mut w = BitWriter::new();
        w.write_utf8_string("blind-corner ⚠", size).unwrap();
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_utf8_string(size).unwrap(), "blind-corner ⚠");
    }

    #[test]
    fn octet_string_fixed_size_has_no_determinant() {
        let size = SizeRange::new(4, 4);
        let mut w = BitWriter::new();
        w.write_octet_string(&[1, 2, 3, 4], size).unwrap();
        assert_eq!(w.bit_len(), 32);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_octet_string(size).unwrap(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn octet_string_size_violation() {
        let size = SizeRange::new(2, 3);
        let mut w = BitWriter::new();
        assert!(w.write_octet_string(&[1], size).is_err());
        assert!(w.write_octet_string(&[1, 2, 3, 4], size).is_err());
    }

    #[test]
    #[should_panic(expected = "size range min must not exceed max")]
    fn size_range_panics_on_inverted_bounds() {
        let _ = SizeRange::new(3, 2);
    }

    #[test]
    fn bit_string_roundtrip_and_validation() {
        let mut w = BitWriter::new();
        w.write_bit_string(0b1010_0001, 8).unwrap();
        assert!(w.write_bit_string(0b1_0000_0000, 8).is_err());
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bit_string(8).unwrap(), 0b1010_0001);
    }

    #[test]
    fn bit_string_full_width() {
        let mut w = BitWriter::new();
        w.write_bit_string(u64::MAX, 64).unwrap();
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bit_string(64).unwrap(), u64::MAX);
    }

    #[test]
    fn extension_marker_roundtrip() {
        let mut w = BitWriter::new();
        w.write_extension_marker(false);
        w.write_extension_marker(true);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert!(!r.read_extension_marker().unwrap());
        assert!(r.read_extension_marker().unwrap());
    }

    #[test]
    fn normally_small_both_branches() {
        for v in [0u64, 1, 63, 64, 1000, u64::MAX] {
            let mut w = BitWriter::new();
            w.write_normally_small(v).unwrap();
            let bytes = w.finish();
            let mut r = BitReader::new(&bytes);
            assert_eq!(r.read_normally_small().unwrap(), v, "value {v}");
        }
        // The small branch costs exactly 7 bits.
        let mut w = BitWriter::new();
        w.write_normally_small(63).unwrap();
        assert_eq!(w.bit_len(), 7);
    }

    proptest! {
        #[test]
        fn constrained_u64_roundtrip(min in 0u64..1 << 40, span in 0u64..1 << 20, off in 0u64..1 << 20) {
            let max = min + span;
            let value = min + off.min(span);
            let mut w = BitWriter::new();
            w.write_constrained_u64(value, min, max).unwrap();
            let bytes = w.finish();
            let mut r = BitReader::new(&bytes);
            prop_assert_eq!(r.read_constrained_u64(min, max).unwrap(), value);
        }

        #[test]
        fn constrained_i64_roundtrip(min in -(1i64 << 40)..1 << 40, span in 0i64..1 << 20, off in 0i64..1 << 20) {
            let max = min + span;
            let value = min + off.min(span);
            let mut w = BitWriter::new();
            w.write_constrained_i64(value, min, max).unwrap();
            let bytes = w.finish();
            let mut r = BitReader::new(&bytes);
            prop_assert_eq!(r.read_constrained_i64(min, max).unwrap(), value);
        }

        #[test]
        fn utf8_roundtrip(s in "\\PC{0,40}") {
            let size = SizeRange::new(0, 256);
            prop_assume!(s.len() <= 256);
            let mut w = BitWriter::new();
            w.write_utf8_string(&s, size).unwrap();
            let bytes = w.finish();
            let mut r = BitReader::new(&bytes);
            prop_assert_eq!(r.read_utf8_string(size).unwrap(), s);
        }

        #[test]
        fn octet_string_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..64)) {
            let size = SizeRange::new(0, 64);
            let mut w = BitWriter::new();
            w.write_bits(0b1, 1); // deliberately unalign
            w.write_octet_string(&data, size).unwrap();
            let bytes = w.finish();
            let mut r = BitReader::new(&bytes);
            r.read_bits(1).unwrap();
            prop_assert_eq!(r.read_octet_string(size).unwrap(), data);
        }
    }
}
