//! Error type shared by every encode/decode operation in this crate.

use std::error::Error;
use std::fmt;

/// Error produced when encoding or decoding UPER bit streams.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum UperError {
    /// The reader ran past the end of the input bit stream.
    ///
    /// Carries the number of bits that were requested but unavailable.
    UnexpectedEnd {
        /// Bits requested by the failed read.
        requested: usize,
        /// Bits remaining in the stream at the time of the read.
        remaining: usize,
    },
    /// A value fell outside its ASN.1 constrained range.
    OutOfRange {
        /// The offending value (widened to `i128` so any field fits).
        value: i128,
        /// Inclusive lower bound of the constraint.
        min: i128,
        /// Inclusive upper bound of the constraint.
        max: i128,
    },
    /// A length determinant exceeded the supported maximum (64 KiB - 1).
    LengthTooLarge(usize),
    /// An enumerated value decoded to an index with no corresponding variant.
    InvalidEnum {
        /// The decoded index.
        index: u64,
        /// Name of the enumeration, for diagnostics.
        name: &'static str,
    },
    /// A decoded character was not valid for the string type (e.g. IA5).
    InvalidCharacter(u32),
    /// A constraint was itself malformed (`min > max`).
    BadConstraint {
        /// Lower bound supplied by the caller.
        min: i128,
        /// Upper bound supplied by the caller.
        max: i128,
    },
}

impl fmt::Display for UperError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UperError::UnexpectedEnd {
                requested,
                remaining,
            } => write!(
                f,
                "unexpected end of bit stream: requested {requested} bits, {remaining} remaining"
            ),
            UperError::OutOfRange { value, min, max } => {
                write!(f, "value {value} outside constrained range [{min}, {max}]")
            }
            UperError::LengthTooLarge(len) => {
                write!(f, "length determinant {len} exceeds supported maximum")
            }
            UperError::InvalidEnum { index, name } => {
                write!(f, "index {index} is not a variant of enumeration {name}")
            }
            UperError::InvalidCharacter(c) => {
                write!(f, "code point {c} is not valid for this string type")
            }
            UperError::BadConstraint { min, max } => {
                write!(f, "malformed constraint: min {min} > max {max}")
            }
        }
    }
}

impl Error for UperError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_specific() {
        let e = UperError::OutOfRange {
            value: 7,
            min: 0,
            max: 3,
        };
        let msg = e.to_string();
        assert!(msg.contains('7'));
        assert!(msg.starts_with("value"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<UperError>();
    }
}
