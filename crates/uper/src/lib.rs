//! ASN.1 UPER-style bit-level codec primitives.
//!
//! ETSI ITS messages (CAM, DENM) are specified in ASN.1 and transmitted with
//! the Unaligned Packed Encoding Rules (UPER). This crate provides the
//! bit-level encoding machinery used by the [`its-messages`] crate: a
//! [`BitWriter`]/[`BitReader`] pair plus the standard UPER field encodings
//! (constrained and semi-constrained integers, optional-presence bitmaps,
//! enumerations, length determinants, character strings).
//!
//! The implementation follows the subset of ITU-T X.691 needed by the ETSI
//! ITS basic services; it is not a general-purpose ASN.1 compiler. Encodings
//! produced here are self-consistent (every `write_*` has a matching
//! `read_*` that round-trips) and compact — a minimal DENM encodes to a few
//! dozen bytes, matching the order of magnitude of real ITS-G5 frames.
//!
//! # Example
//!
//! ```
//! use uper::{BitReader, BitWriter};
//!
//! # fn main() -> Result<(), uper::UperError> {
//! let mut w = BitWriter::new();
//! w.write_constrained_u64(42, 0, 255)?; // one byte worth of bits
//! w.write_bool(true);
//! let bytes = w.finish();
//!
//! let mut r = BitReader::new(&bytes);
//! assert_eq!(r.read_constrained_u64(0, 255)?, 42);
//! assert!(r.read_bool()?);
//! # Ok(())
//! # }
//! ```
//!
//! [`its-messages`]: ../its_messages/index.html

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

mod bits;
mod error;
mod fields;

pub use bits::{BitReader, BitWriter};
pub use error::UperError;
pub use fields::{Codec, SizeRange};

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, UperError>;

/// Encodes a value implementing [`Codec`] into a fresh byte vector.
///
/// # Errors
///
/// Returns an error if the value violates its own ASN.1 constraints (for
/// example an out-of-range constrained integer).
///
/// # Example
///
/// ```
/// use uper::{BitReader, BitWriter, Codec, UperError};
///
/// struct Flag(bool);
/// impl Codec for Flag {
///     fn encode(&self, w: &mut BitWriter) -> uper::Result<()> {
///         w.write_bool(self.0);
///         Ok(())
///     }
///     fn decode(r: &mut BitReader<'_>) -> uper::Result<Self> {
///         Ok(Flag(r.read_bool()?))
///     }
/// }
///
/// # fn main() -> Result<(), UperError> {
/// let bytes = uper::encode(&Flag(true))?;
/// let back: Flag = uper::decode(&bytes)?;
/// assert!(back.0);
/// # Ok(())
/// # }
/// ```
pub fn encode<T: Codec>(value: &T) -> Result<Vec<u8>> {
    let mut w = BitWriter::new();
    value.encode(&mut w)?;
    Ok(w.finish())
}

/// Encodes into a caller-owned buffer, clearing it first — the
/// allocation-free form of [`encode`] for hot paths that reuse one
/// scratch buffer across messages. The buffer's capacity is kept.
///
/// # Errors
///
/// Returns an error if any field violates its constraint; the buffer is
/// left cleared in that case.
pub fn encode_into<T: Codec>(value: &T, out: &mut Vec<u8>) -> Result<()> {
    out.clear();
    let mut w = BitWriter::over(std::mem::take(out));
    let result = value.encode(&mut w);
    *out = w.finish();
    if let Err(e) = result {
        out.clear();
        return Err(e);
    }
    Ok(())
}

/// Decodes a value implementing [`Codec`] from a byte slice.
///
/// Trailing padding bits (used to round the encoding up to a whole byte) are
/// ignored, mirroring UPER framing.
///
/// # Errors
///
/// Returns an error if the input is truncated or contains a field outside
/// its constrained range. See [`encode`] for a usage example.
pub fn decode<T: Codec>(bytes: &[u8]) -> Result<T> {
    let mut r = BitReader::new(bytes);
    T::decode(&mut r)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    struct Pair {
        a: u64,
        b: i64,
    }

    impl Codec for Pair {
        fn encode(&self, w: &mut BitWriter) -> Result<()> {
            w.write_constrained_u64(self.a, 0, 1000)?;
            w.write_constrained_i64(self.b, -50, 50)?;
            Ok(())
        }
        fn decode(r: &mut BitReader<'_>) -> Result<Self> {
            Ok(Pair {
                a: r.read_constrained_u64(0, 1000)?,
                b: r.read_constrained_i64(-50, 50)?,
            })
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let p = Pair { a: 999, b: -49 };
        let bytes = encode(&p).unwrap();
        let back: Pair = decode(&bytes).unwrap();
        assert_eq!(p, back);
    }

    #[test]
    fn decode_truncated_fails() {
        let p = Pair { a: 999, b: -49 };
        let bytes = encode(&p).unwrap();
        let err = decode::<Pair>(&bytes[..bytes.len() - 1]);
        assert!(err.is_err() || bytes.len() == 1);
    }
}
