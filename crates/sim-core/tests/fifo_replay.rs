//! FIFO tie-break regression across the queue swap: replays the exact
//! schedule trace a real `scenario.rs` run generates and asserts the
//! calendar queue dispatches it in the same order as the reference
//! heap.
//!
//! The trace below was captured from the `quickstart` example's
//! collision-avoidance scenario (default config) by logging every
//! `schedule_at` call as `(events_dispatched_so_far, time_ns)` — i.e.
//! which dispatch step issued the schedule, including the handler
//! follow-up chains. Replaying it interleaves schedules and pops the
//! way the live run does, and the same-timestamp bursts (the 500 ms
//! control-tick / vehicle-poll coincidences, plus the t=0 kickoff)
//! are exactly the cases where only the FIFO seq tie-break determines
//! handler order.

use sim_core::{EventQueue, ReferenceQueue, SimTime};

/// `(dispatch_step, time_ns)` for every schedule call of the captured
/// run, in call order.
const CAPTURE: &[(u64, u64)] = &[
    (0, 0),
    (0, 250000000),
    (0, 35811423),
    (1, 215014),
    (1, 20000000),
    (3, 40000000),
    (4, 85811423),
    (5, 60000000),
    (6, 80000000),
    (7, 100000000),
    (8, 135811423),
    (9, 120000000),
    (10, 140000000),
    (11, 185811423),
    (12, 160000000),
    (13, 180000000),
    (14, 200000000),
    (15, 235811423),
    (16, 220000000),
    (17, 240000000),
    (18, 285811423),
    (19, 260000000),
    (20, 438305625),
    (20, 500000000),
    (21, 280000000),
    (22, 300000000),
    (23, 335811423),
    (24, 320000000),
    (25, 340000000),
    (26, 385811423),
    (27, 360000000),
    (28, 380000000),
    (29, 400000000),
    (30, 435811423),
    (31, 420000000),
    (32, 440000000),
    (33, 485811423),
    (35, 460000000),
    (36, 480000000),
    (37, 500000000),
    (38, 535811423),
    (39, 650423401),
    (39, 750000000),
    (40, 520000000),
    (41, 540000000),
    (42, 585811423),
    (43, 560000000),
    (44, 580000000),
    (45, 600000000),
    (46, 635811423),
    (47, 620000000),
    (48, 640000000),
    (49, 685811423),
    (50, 660000000),
    (52, 680000000),
    (53, 700000000),
    (54, 735811423),
    (55, 720000000),
    (56, 740000000),
    (57, 785811423),
    (58, 760000000),
    (59, 924821015),
    (59, 1000000000),
    (60, 780000000),
    (61, 800000000),
    (62, 835811423),
    (63, 820000000),
    (64, 840000000),
    (65, 885811423),
    (66, 860000000),
    (67, 880000000),
    (68, 900000000),
    (69, 935811423),
    (70, 920000000),
    (71, 940000000),
    (73, 985811423),
    (74, 960000000),
    (75, 980000000),
    (76, 1000000000),
    (77, 1035811423),
    (78, 1198625483),
    (78, 1250000000),
    (79, 1000207009),
    (79, 1020000000),
    (81, 1040000000),
    (82, 1085811423),
    (83, 1060000000),
    (84, 1080000000),
    (85, 1100000000),
    (86, 1135811423),
    (87, 1120000000),
    (88, 1140000000),
    (89, 1185811423),
    (90, 1160000000),
    (91, 1180000000),
    (92, 1200000000),
    (93, 1235811423),
    (95, 1220000000),
    (96, 1240000000),
    (97, 1285811423),
    (98, 1260000000),
    (99, 1408274525),
    (99, 1500000000),
    (100, 1280000000),
    (101, 1300000000),
    (102, 1335811423),
    (103, 1320000000),
    (104, 1340000000),
    (105, 1385811423),
    (106, 1360000000),
    (107, 1380000000),
    (108, 1400000000),
    (109, 1435811423),
    (110, 1420000000),
    (112, 1440000000),
    (113, 1485811423),
    (114, 1460000000),
    (115, 1480000000),
    (116, 1500000000),
    (117, 1535811423),
    (118, 1684376548),
    (118, 1750000000),
    (119, 1520000000),
    (120, 1540000000),
    (121, 1585811423),
    (122, 1560000000),
    (123, 1580000000),
    (124, 1600000000),
    (125, 1635811423),
    (126, 1620000000),
    (127, 1640000000),
    (128, 1685811423),
    (129, 1660000000),
    (130, 1680000000),
    (131, 1700000000),
    (133, 1735811423),
    (134, 1720000000),
    (135, 1740000000),
    (136, 1785811423),
    (137, 1760000000),
    (138, 1935633622),
    (138, 2000000000),
    (139, 1780000000),
    (140, 1800000000),
    (141, 1835811423),
    (142, 1820000000),
    (143, 1840000000),
    (144, 1885811423),
    (145, 1860000000),
    (146, 1880000000),
    (147, 1900000000),
    (148, 1935811423),
    (149, 1920000000),
    (150, 1940000000),
    (152, 1985811423),
    (153, 1960000000),
    (154, 1980000000),
    (155, 2000000000),
    (156, 2035811423),
    (157, 2250000000),
    (158, 2000231005),
    (158, 2020000000),
    (160, 2040000000),
    (161, 2085811423),
    (162, 2060000000),
    (163, 2080000000),
    (164, 2100000000),
    (165, 2135811423),
    (166, 2120000000),
    (167, 2140000000),
    (168, 2185811423),
    (169, 2160000000),
    (170, 2180000000),
    (171, 2200000000),
    (172, 2235811423),
    (173, 2220000000),
    (174, 2240000000),
    (175, 2285811423),
    (176, 2260000000),
    (177, 2445425349),
    (177, 2500000000),
    (178, 2280000000),
    (179, 2300000000),
    (180, 2335811423),
    (181, 2320000000),
    (182, 2340000000),
    (183, 2385811423),
    (184, 2360000000),
    (185, 2380000000),
    (186, 2400000000),
    (187, 2435811423),
    (188, 2420000000),
    (189, 2440000000),
    (190, 2485811423),
    (191, 2460000000),
    (192, 2460480240),
    (193, 2480000000),
    (194, 2462022849),
    (195, 2463964359),
    (197, 2500000000),
    (198, 2487993367),
    (198, 2535811423),
    (199, 2506793178),
    (200, 2687829478),
    (200, 2750000000),
    (201, 2520000000),
    (203, 2540000000),
    (205, 2560000000),
    (206, 2580000000),
    (207, 2600000000),
    (208, 2620000000),
    (209, 2620207004),
    (209, 2640000000),
    (211, 2660000000),
    (212, 2680000000),
    (213, 2700000000),
    (215, 2720000000),
    (216, 2740000000),
    (217, 2760000000),
    (218, 2927002798),
    (218, 3000000000),
    (219, 2780000000),
    (220, 2800000000),
    (221, 2800255003),
    (221, 2820000000),
    (223, 2840000000),
    (224, 2860000000),
    (225, 2880000000),
    (226, 2900000000),
    (227, 2920000000),
    (228, 2940000000),
    (230, 2960000000),
    (231, 2980000000),
    (232, 2980207003),
    (232, 3000000000),
    (234, 3189418302),
    (234, 3250000000),
    (235, 3020000000),
    (236, 3040000000),
];

/// Replays the capture on a queue: schedules tagged for step `n` are
/// issued right after the `n`-th pop, payloads are capture indices, and
/// the returned vec is the dispatch order `(time_ns, capture_index)`.
fn replay<Q: Queue>(q: &mut Q) -> Vec<(u64, u32)> {
    let mut order = Vec::new();
    let mut next = 0usize;
    let mut dispatched = 0u64;
    loop {
        while let Some(&(step, t)) = CAPTURE.get(next) {
            if step != dispatched {
                break;
            }
            q.schedule(SimTime::from_nanos(t), next as u32);
            next += 1;
        }
        match q.pop(SimTime::MAX) {
            Some((t, e)) => {
                order.push((t.as_nanos(), e));
                dispatched += 1;
            }
            None => break,
        }
    }
    assert_eq!(
        next,
        CAPTURE.len(),
        "capture replay did not consume every schedule"
    );
    order
}

/// The slice of queue API the replay needs, implemented for both
/// queues so one driver exercises each identically.
trait Queue {
    fn schedule(&mut self, t: SimTime, e: u32);
    fn pop(&mut self, until: SimTime) -> Option<(SimTime, u32)>;
}

impl Queue for EventQueue<u32> {
    fn schedule(&mut self, t: SimTime, e: u32) {
        self.schedule_at(t, e);
    }
    fn pop(&mut self, until: SimTime) -> Option<(SimTime, u32)> {
        self.pop_next(until)
    }
}

impl Queue for ReferenceQueue<u32> {
    fn schedule(&mut self, t: SimTime, e: u32) {
        self.schedule_at(t, e);
    }
    fn pop(&mut self, until: SimTime) -> Option<(SimTime, u32)> {
        self.pop_next(until)
    }
}

#[test]
fn captured_scenario_trace_dispatches_in_reference_order() {
    let calendar = replay(&mut EventQueue::new());
    let reference = replay(&mut ReferenceQueue::new());
    assert_eq!(calendar.len(), CAPTURE.len());
    assert_eq!(calendar, reference);
    // The burst instants (t=0 kickoff and the 500 ms coincidences) must
    // come out strictly in capture order — the FIFO contract itself,
    // independent of the reference implementation.
    for w in calendar.windows(2) {
        if w[0].0 == w[1].0 {
            assert!(w[0].1 < w[1].1, "same-instant events reordered: {:?}", w);
        }
    }
}
