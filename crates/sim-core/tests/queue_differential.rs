//! Differential harness pinning the calendar [`EventQueue`] against the
//! heap-based [`ReferenceQueue`].
//!
//! The reference queue is the executable specification of the ordering
//! contract (ascending `(time, seq)`, FIFO at equal instants); these
//! properties drive both queues through the same arbitrary interleaving
//! of `schedule_at` and `pop_next`/`pop_batch` calls — same-timestamp
//! bursts, far-future outliers that force a calendar resize and cursor
//! jumps, and a forced seq wraparound — and require every observable
//! (popped events, timestamps, `now`, `pending`, `dispatched`) to match
//! exactly, step by step.

use proptest::prelude::*;
use sim_core::{EventQueue, ReferenceQueue, SimDuration, SimTime};

/// One step of a queue program, decoded from `(op, raw)` fuzz words.
#[derive(Debug, Clone, Copy)]
enum Step {
    Schedule(SimDuration),
    Pop(Option<SimDuration>),
}

/// Shapes a raw u64 into a schedule-after delay that exercises the
/// calendar's interesting regimes: same-instant bursts, sub-bucket
/// micro-delays, multi-bucket hops, and far-future outliers (whole
/// seconds ahead — thousands of empty calendar days).
fn shape_delay(raw: u64) -> SimDuration {
    match raw % 4 {
        0 => SimDuration::ZERO,
        1 => SimDuration::from_nanos(raw % 1_000),
        2 => SimDuration::from_nanos(raw % 10_000_000),
        _ => SimDuration::from_nanos((raw % 64) * 1_000_000_000),
    }
}

fn decode(ops: &[(u8, u64)]) -> Vec<Step> {
    ops.iter()
        .map(|&(op, raw)| match op {
            // Biased toward schedules so queues actually fill up (and,
            // at the larger program sizes, cross the resize threshold).
            0..=5 => Step::Schedule(shape_delay(raw)),
            6..=8 => Step::Pop(Some(SimDuration::from_nanos(raw % 20_000_000))),
            _ => Step::Pop(None),
        })
        .collect()
}

/// Runs one program against both queues with single-event pops,
/// asserting every observable matches at every step.
fn run_differential(ops: &[(u8, u64)], start_seq: u64) -> Result<(), TestCaseError> {
    let mut cal: EventQueue<u32> = EventQueue::new();
    let mut rf: ReferenceQueue<u32> = ReferenceQueue::new();
    cal.force_seq(start_seq);
    rf.force_seq(start_seq);
    let mut payload: u32 = 0;
    for step in decode(ops) {
        match step {
            Step::Schedule(delay) => {
                let t = cal.now() + delay;
                cal.schedule_at(t, payload);
                rf.schedule_at(t, payload);
                payload += 1;
            }
            Step::Pop(bound) => {
                let until = match bound {
                    Some(d) => cal.now() + d,
                    None => SimTime::MAX,
                };
                prop_assert_eq!(cal.pop_next(until), rf.pop_next(until));
            }
        }
        prop_assert_eq!(cal.now(), rf.now());
        prop_assert_eq!(cal.pending(), rf.pending());
        prop_assert_eq!(cal.dispatched(), rf.dispatched());
    }
    // Drain both to the end: the full residual order must agree too.
    loop {
        let (a, b) = (cal.pop_next(SimTime::MAX), rf.pop_next(SimTime::MAX));
        prop_assert_eq!(a, b);
        if a.is_none() {
            break;
        }
    }
    Ok(())
}

proptest! {
    #[test]
    fn pop_order_matches_reference(
        ops in proptest::collection::vec((0u8..10, any::<u64>()), 0..400)
    ) {
        run_differential(&ops, 0)?;
    }

    #[test]
    fn pop_order_matches_reference_across_seq_wrap(
        ops in proptest::collection::vec((0u8..10, any::<u64>()), 0..200),
        back in 0u64..32
    ) {
        // Start the tie-break counter just short of u64::MAX so the
        // wrap happens mid-program; the documented post-wrap ordering
        // must be identical in both queues.
        run_differential(&ops, u64::MAX - back)?;
    }

    #[test]
    fn batch_pops_match_reference(
        ops in proptest::collection::vec((0u8..10, any::<u64>()), 0..300)
    ) {
        let mut cal: EventQueue<u32> = EventQueue::new();
        let mut rf: ReferenceQueue<u32> = ReferenceQueue::new();
        let mut payload: u32 = 0;
        let (mut ba, mut bb) = (Vec::new(), Vec::new());
        for step in decode(&ops) {
            match step {
                Step::Schedule(delay) => {
                    let t = cal.now() + delay;
                    cal.schedule_at(t, payload);
                    rf.schedule_at(t, payload);
                    payload += 1;
                }
                Step::Pop(bound) => {
                    let until = match bound {
                        Some(d) => cal.now() + d,
                        None => SimTime::MAX,
                    };
                    ba.clear();
                    bb.clear();
                    prop_assert_eq!(cal.pop_batch(until, &mut ba), rf.pop_batch(until, &mut bb));
                    prop_assert_eq!(&ba, &bb);
                }
            }
            prop_assert_eq!(cal.pending(), rf.pending());
        }
    }

    #[test]
    fn resize_burst_matches_reference(
        seed in any::<u64>()
    ) {
        // Deterministically derived burst of ~600 pending events: far
        // past the 4×64-slot initial capacity, so the bucket array
        // doubles (64 → 128 → 256) while everything is still pending,
        // then drains in one go.
        let mut cal: EventQueue<u32> = EventQueue::new();
        let mut rf: ReferenceQueue<u32> = ReferenceQueue::new();
        let mut x = seed;
        for i in 0..600u32 {
            // splitmix64 step — cheap, deterministic spread.
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            let t = SimTime::from_nanos(z % 50_000_000);
            cal.schedule_at(t, i);
            rf.schedule_at(t, i);
        }
        loop {
            let (a, b) = (cal.pop_next(SimTime::MAX), rf.pop_next(SimTime::MAX));
            prop_assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }
}
