//! Shared special-function approximations.
//!
//! The complementary error function underpins both the PHY link model
//! (Q-function → BER, `crates/phy80211p`) and the statistics layer
//! (normal CDF fits, `crates/core/src/metrics.rs`). Both previously
//! carried copy-pasted implementations; this module is the single
//! definition, so a change to the approximation cannot silently drift
//! one user away from the other.

/// Complementary error function `erfc(x) = 1 - erf(x)`.
///
/// Abramowitz–Stegun 7.1.26 rational approximation of `erf`, extended
/// to negative arguments via the reflection `erfc(-x) = 2 - erfc(x)`.
/// Absolute error of the underlying `erf` approximation is ≤ 1.5e-7
/// over the full range, more than enough for frame-error-rate curves
/// and CDF fits.
pub fn erfc(x: f64) -> f64 {
    if x < 0.0 {
        return 2.0 - erfc(-x);
    }
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    poly * (-x * x).exp()
}

/// Gaussian tail probability `Q(x) = P(N(0,1) > x)`, via [`erfc`].
pub fn q_function(x: f64) -> f64 {
    0.5 * erfc(x / std::f64::consts::SQRT_2)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference values from tables of erfc (exact to the digits shown):
    /// the approximation must agree to its documented ≤ 1.5e-7 error.
    #[test]
    fn erfc_matches_reference_values() {
        let cases = [
            (0.0, 1.0),
            (0.5, 0.479_500_122),
            (1.0, 0.157_299_207),
            (1.5, 0.033_894_854),
            (2.0, 0.004_677_735),
            (3.0, 0.000_022_090_497),
        ];
        for (x, want) in cases {
            let got = erfc(x);
            assert!(
                (got - want).abs() <= 1.5e-7,
                "erfc({x}) = {got}, want {want}"
            );
        }
    }

    #[test]
    fn erfc_reflection_for_negative_arguments() {
        for x in [0.1, 0.7, 1.3, 2.5] {
            let s = erfc(-x) + erfc(x);
            assert!((s - 2.0).abs() < 1e-12, "erfc(-x)+erfc(x) = {s}");
        }
    }

    #[test]
    fn erfc_limits_and_monotonicity() {
        assert!(erfc(6.0) < 1e-12);
        assert!(erfc(-6.0) > 2.0 - 1e-12);
        let mut prev = erfc(-4.0);
        let mut x = -4.0 + 0.25;
        while x <= 4.0 {
            let v = erfc(x);
            assert!(v < prev, "erfc not decreasing at {x}");
            prev = v;
            x += 0.25;
        }
    }

    #[test]
    fn q_function_reference_values() {
        assert!((q_function(0.0) - 0.5).abs() < 1e-7);
        assert!((q_function(1.0) - 0.158_655_254).abs() < 1e-7);
        assert!((q_function(3.0) - 0.001_349_898).abs() < 1e-7);
        assert!((q_function(-1.0) - 0.841_344_746).abs() < 1e-7);
    }
}
