//! Deterministic, forkable random number generation.
//!
//! Every stochastic component in the testbed (channel shadowing, MAC
//! backoff, detector noise, NTP offsets, polling phase) draws from a
//! [`SimRng`]. A run is fully reproducible from one `u64` seed; independent
//! subsystems fork their own streams with [`SimRng::fork`] so adding a
//! consumer in one subsystem never perturbs another.
//!
//! The generator is xoshiro256++ with a splitmix64 seeding routine —
//! implemented here (rather than relying on an external crate) so the
//! byte-for-byte sequence is pinned by this crate and cannot change under
//! a dependency upgrade. Generic consumers can abstract over the source
//! through the local [`RngCore`] trait, which mirrors the `rand` crate's
//! trait of the same name.

/// The core random-source interface, mirroring `rand::RngCore` so code
/// written against that trait ports over unchanged. Defined locally
/// because all randomness in the testbed must flow from [`SimRng`]
/// (detlint rule D2) and the workspace builds without crates.io access.
pub trait RngCore {
    /// Next raw 32-bit value.
    fn next_u32(&mut self) -> u32;
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

/// Splitmix64 step, used for seeding and stream derivation.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic xoshiro256++ random source.
///
/// # Example
///
/// ```
/// use sim_core::SimRng;
/// let mut a = SimRng::seed_from(42);
/// let mut b = SimRng::seed_from(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Self { s }
    }

    /// Derives an independent stream labelled by `label`.
    ///
    /// Forking with the same label always yields the same child stream, so
    /// subsystems can be wired up in any order without changing each
    /// other's randomness.
    pub fn fork(&self, label: &str) -> SimRng {
        // Mix the label into the parent state via FNV-1a, then re-seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        let mixed = self.s[0] ^ h.rotate_left(17) ^ self.s[2].wrapping_mul(0x9E37_79B9_7F4A_7C15);
        SimRng::seed_from(mixed)
    }

    /// Derives an independent stream labelled by a 64-bit value.
    ///
    /// The numeric sibling of [`SimRng::fork`], for hot paths that fork
    /// per `(node, frame)` pair and cannot afford to format a string
    /// label: the label is mixed through splitmix64 instead of FNV-1a,
    /// then combined with the parent state exactly like `fork`. Like
    /// `fork`, this is draw-free — the parent stream is not advanced —
    /// and the same `(parent, label)` always yields the same child, so
    /// skipping some labels (e.g. culled receivers) never perturbs the
    /// streams of the labels that *are* drawn.
    pub fn fork_u64(&self, label: u64) -> SimRng {
        let mut sm = label;
        let h = splitmix64(&mut sm);
        let mixed = self.s[0] ^ h.rotate_left(17) ^ self.s[2].wrapping_mul(0x9E37_79B9_7F4A_7C15);
        SimRng::seed_from(mixed)
    }

    /// Next raw 64-bit value (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform float in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform float in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "uniform bounds inverted");
        lo + (hi - lo) * self.f64()
    }

    /// Uniform integer in `[0, n)` via Lemire's method.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        // Unbiased multiply-shift rejection sampling.
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(n as u128);
            let low = m as u64;
            if low >= n {
                return (m >> 64) as u64;
            }
            let threshold = n.wrapping_neg() % n;
            if low >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.f64() < p.clamp(0.0, 1.0)
    }

    /// Standard normal sample (Box–Muller; one value per call).
    pub fn standard_normal(&mut self) -> f64 {
        // Avoid ln(0) by nudging u1 away from zero.
        let u1 = self.f64().max(f64::MIN_POSITIVE);
        let u2 = self.f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal sample with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.standard_normal()
    }

    /// Exponential sample with the given mean (`mean > 0`).
    ///
    /// # Panics
    ///
    /// Panics if `mean <= 0`.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "exponential mean must be positive");
        -mean * (1.0 - self.f64()).ln()
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
    fn next_u64(&mut self) -> u64 {
        SimRng::next_u64(self)
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(8);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn fork_is_stable_and_independent() {
        let parent = SimRng::seed_from(1);
        let mut c1 = parent.fork("mac");
        let mut c2 = parent.fork("mac");
        let mut c3 = parent.fork("channel");
        assert_eq!(c1.next_u64(), c2.next_u64());
        assert_ne!(c1.next_u64(), c3.next_u64());
    }

    #[test]
    fn fork_u64_is_stable_and_independent() {
        let parent = SimRng::seed_from(1);
        let mut c1 = parent.fork_u64(7);
        let mut c2 = parent.fork_u64(7);
        let mut c3 = parent.fork_u64(8);
        assert_eq!(c1.next_u64(), c2.next_u64());
        assert_ne!(c1.next_u64(), c3.next_u64());
    }

    #[test]
    fn fork_u64_is_draw_free() {
        let mut a = SimRng::seed_from(2);
        let mut b = SimRng::seed_from(2);
        let _ = a.fork_u64(3);
        let _ = a.fork_u64(u64::MAX);
        assert_eq!(a.next_u64(), b.next_u64(), "fork_u64 advanced the parent");
    }

    #[test]
    fn fork_u64_nearby_labels_decorrelate() {
        // Consecutive (node, frame) labels must not produce correlated
        // child streams — splitmix64 whitens the label before mixing.
        let parent = SimRng::seed_from(3);
        let mut streams: Vec<u64> = (0..64).map(|l| parent.fork_u64(l).next_u64()).collect();
        streams.sort_unstable();
        streams.dedup();
        assert_eq!(streams.len(), 64, "colliding child streams");
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SimRng::seed_from(3);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn uniform_mean_is_plausible() {
        let mut r = SimRng::seed_from(4);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.uniform(0.0, 50.0)).sum::<f64>() / n as f64;
        assert!((mean - 25.0).abs() < 1.0, "mean {mean}");
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut r = SimRng::seed_from(5);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = r.below(7) as usize;
            assert!(v < 7);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn normal_moments() {
        let mut r = SimRng::seed_from(6);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| r.normal(10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.2, "var {var}");
    }

    #[test]
    fn exponential_mean() {
        let mut r = SimRng::seed_from(9);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| r.exponential(3.0)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn bernoulli_probability() {
        let mut r = SimRng::seed_from(10);
        let hits = (0..100_000).filter(|_| r.bernoulli(0.3)).count();
        let p = hits as f64 / 100_000.0;
        assert!((p - 0.3).abs() < 0.01, "p {p}");
        assert!(!r.bernoulli(0.0));
        assert!(r.bernoulli(1.0));
    }

    #[test]
    fn fill_bytes_deterministic() {
        use super::RngCore as _;
        let mut a = SimRng::seed_from(11);
        let mut b = SimRng::seed_from(11);
        let mut ba = [0u8; 13];
        let mut bb = [0u8; 13];
        a.fill_bytes(&mut ba);
        b.fill_bytes(&mut bb);
        assert_eq!(ba, bb);
    }

    proptest! {
        #[test]
        fn below_always_below(seed in any::<u64>(), n in 1u64..1_000_000) {
            let mut r = SimRng::seed_from(seed);
            for _ in 0..10 {
                prop_assert!(r.below(n) < n);
            }
        }
    }
}
