//! Per-node wall clocks with NTP-style synchronisation error.
//!
//! The paper's four hosts (edge node, RSU, OBU, vehicle ECU) are
//! synchronised with NTP and log integer-millisecond timestamps; per-step
//! intervals in Table II therefore include residual clock offset and
//! quantisation. [`NodeClock`] reproduces both: each node's wall clock is
//! the true simulation time plus a bounded offset (drawn from an
//! [`NtpModel`]) and a slow drift, quantised to milliseconds on read.

use crate::rng::SimRng;
use crate::time::SimTime;

/// Distribution of NTP residual synchronisation error across nodes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NtpModel {
    /// Standard deviation of the per-node constant offset, in microseconds.
    /// LAN NTP typically achieves sub-millisecond sync; 300 µs is a
    /// realistic residual.
    pub offset_std_us: f64,
    /// Maximum absolute offset in microseconds (truncation bound).
    pub offset_cap_us: f64,
    /// Clock drift standard deviation in parts-per-million.
    pub drift_std_ppm: f64,
}

impl Default for NtpModel {
    fn default() -> Self {
        Self {
            offset_std_us: 300.0,
            offset_cap_us: 1_500.0,
            drift_std_ppm: 5.0,
        }
    }
}

impl NtpModel {
    /// A perfectly synchronised model (zero offset and drift), useful in
    /// unit tests.
    pub fn perfect() -> Self {
        Self {
            offset_std_us: 0.0,
            offset_cap_us: 0.0,
            drift_std_ppm: 0.0,
        }
    }
}

/// A single node's wall clock.
///
/// # Example
///
/// ```
/// use sim_core::{NodeClock, NtpModel, SimRng, SimTime};
///
/// let mut rng = SimRng::seed_from(1);
/// let clock = NodeClock::sample(&NtpModel::default(), &mut rng, 0);
/// let wall = clock.wall_millis(SimTime::from_secs(1));
/// // Within a couple of ms of true time.
/// assert!((wall as i64 - 1000).abs() <= 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeClock {
    /// Constant offset from true time, nanoseconds (positive = fast).
    offset_ns: i64,
    /// Fractional drift rate (e.g. 1e-6 = 1 ppm fast).
    drift: f64,
    /// Wall-clock epoch: what this node reports at simulation time zero,
    /// in milliseconds (e.g. milliseconds since the ITS epoch).
    epoch_ms: u64,
}

impl NodeClock {
    /// A perfect clock with the given epoch.
    pub fn perfect(epoch_ms: u64) -> Self {
        Self {
            offset_ns: 0,
            drift: 0.0,
            epoch_ms,
        }
    }

    /// Samples a clock from an [`NtpModel`].
    pub fn sample(model: &NtpModel, rng: &mut SimRng, epoch_ms: u64) -> Self {
        let raw_us = rng.normal(0.0, model.offset_std_us);
        let offset_us = raw_us.clamp(-model.offset_cap_us, model.offset_cap_us);
        let drift = rng.normal(0.0, model.drift_std_ppm) * 1e-6;
        Self {
            offset_ns: (offset_us * 1_000.0) as i64,
            drift,
            epoch_ms,
        }
    }

    /// The constant offset of this clock in nanoseconds.
    pub fn offset_ns(&self) -> i64 {
        self.offset_ns
    }

    /// This node's wall-clock reading at simulation instant `now`, in
    /// nanoseconds past the epoch (not quantised).
    pub fn wall_nanos(&self, now: SimTime) -> i64 {
        let true_ns = now.as_nanos() as i64;
        let drift_ns = (true_ns as f64 * self.drift) as i64;
        self.epoch_ms as i64 * 1_000_000 + true_ns + self.offset_ns + drift_ns
    }

    /// This node's wall-clock reading in whole milliseconds — what the
    /// testbed's log statements record.
    pub fn wall_millis(&self, now: SimTime) -> u64 {
        (self.wall_nanos(now).max(0) as u64) / 1_000_000
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_clock_reports_true_time() {
        let c = NodeClock::perfect(0);
        assert_eq!(c.wall_millis(SimTime::from_millis(1234)), 1234);
        assert_eq!(c.offset_ns(), 0);
    }

    #[test]
    fn epoch_shifts_reading() {
        let c = NodeClock::perfect(1_000_000);
        assert_eq!(c.wall_millis(SimTime::from_millis(5)), 1_000_005);
    }

    #[test]
    fn sampled_offsets_bounded_by_cap() {
        let model = NtpModel {
            offset_std_us: 10_000.0, // huge, so the cap binds
            offset_cap_us: 1_500.0,
            drift_std_ppm: 0.0,
        };
        let mut rng = SimRng::seed_from(2);
        for _ in 0..100 {
            let c = NodeClock::sample(&model, &mut rng, 0);
            assert!(c.offset_ns().abs() <= 1_500_000);
        }
    }

    #[test]
    fn quantisation_floors_to_millisecond() {
        let c = NodeClock::perfect(0);
        assert_eq!(c.wall_millis(SimTime::from_micros(1_999)), 1);
        assert_eq!(c.wall_millis(SimTime::from_micros(2_000)), 2);
    }

    #[test]
    fn two_sampled_clocks_disagree_slightly() {
        let model = NtpModel::default();
        let mut rng = SimRng::seed_from(3);
        let a = NodeClock::sample(&model, &mut rng, 0);
        let b = NodeClock::sample(&model, &mut rng, 0);
        let t = SimTime::from_secs(10);
        let diff_ns = (a.wall_nanos(t) - b.wall_nanos(t)).abs();
        assert!(diff_ns > 0, "clocks should differ");
        // Offsets capped at 1.5 ms each, drift 5 ppm over 10 s is 50 µs.
        assert!(diff_ns < 3_200_000, "diff {diff_ns} ns");
    }

    #[test]
    fn drift_accumulates_over_time() {
        let model = NtpModel {
            offset_std_us: 0.0,
            offset_cap_us: 0.0,
            drift_std_ppm: 100.0,
        };
        let mut rng = SimRng::seed_from(4);
        let c = NodeClock::sample(&model, &mut rng, 0);
        let early = c.wall_nanos(SimTime::from_secs(1)) - 1_000_000_000;
        let late = c.wall_nanos(SimTime::from_secs(100)) - 100_000_000_000;
        assert!(late.abs() > early.abs(), "drift grows: {early} vs {late}");
    }

    #[test]
    fn negative_wall_time_clamps_to_zero() {
        let model = NtpModel {
            offset_std_us: 10_000.0,
            offset_cap_us: 10_000.0,
            drift_std_ppm: 0.0,
        };
        let mut rng = SimRng::seed_from(5);
        // Find a clock with negative offset and read it at t=0.
        for _ in 0..50 {
            let c = NodeClock::sample(&model, &mut rng, 0);
            if c.offset_ns() < 0 {
                assert_eq!(c.wall_millis(SimTime::ZERO), 0);
                return;
            }
        }
        panic!("no negative-offset clock sampled");
    }
}
