//! Event tracing with a stable digest.
//!
//! Experiments record what happened and when (DENM sent, DENM received,
//! actuator command, vehicle halted). [`Trace`] collects these records and
//! computes an FNV-based digest over the full sequence, which the
//! determinism integration test uses to assert that two runs with the same
//! seed are byte-identical.

use crate::time::SimTime;
use std::fmt;

/// One record in a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulation instant of the event.
    pub time: SimTime,
    /// Node that produced it (e.g. `"rsu"`, `"obu"`, `"vehicle"`).
    pub node: String,
    /// Short machine-readable kind (e.g. `"denm_tx"`).
    pub kind: String,
    /// Free-form detail.
    pub detail: String,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} {}: {}",
            self.time, self.node, self.kind, self.detail
        )
    }
}

/// An append-only event trace.
///
/// # Example
///
/// ```
/// use sim_core::{SimTime, Trace};
///
/// let mut t = Trace::new();
/// t.record(SimTime::from_millis(3), "rsu", "denm_tx", "seq=1");
/// assert_eq!(t.len(), 1);
/// let d1 = t.digest();
/// t.record(SimTime::from_millis(4), "obu", "denm_rx", "seq=1");
/// assert_ne!(t.digest(), d1);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a record.
    pub fn record(
        &mut self,
        time: SimTime,
        node: impl Into<String>,
        kind: impl Into<String>,
        detail: impl Into<String>,
    ) {
        self.events.push(TraceEvent {
            time,
            node: node.into(),
            kind: kind.into(),
            detail: detail.into(),
        });
    }

    /// All records, in insertion order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Records matching `kind`.
    pub fn of_kind<'a>(&'a self, kind: &'a str) -> impl Iterator<Item = &'a TraceEvent> + 'a {
        self.events.iter().filter(move |e| e.kind == kind)
    }

    /// First record of the given kind, if any.
    pub fn first_of_kind(&self, kind: &str) -> Option<&TraceEvent> {
        self.events.iter().find(|e| e.kind == kind)
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Stable 64-bit digest over every record (FNV-1a over time, node,
    /// kind and detail). Identical traces — and only identical traces, up
    /// to hash collisions — produce the same digest.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
        };
        for e in &self.events {
            eat(&e.time.as_nanos().to_le_bytes());
            eat(e.node.as_bytes());
            eat(&[0xFF]);
            eat(e.kind.as_bytes());
            eat(&[0xFE]);
            eat(e.detail.as_bytes());
            eat(&[0xFD]);
        }
        h
    }
}

impl Extend<TraceEvent> for Trace {
    fn extend<T: IntoIterator<Item = TraceEvent>>(&mut self, iter: T) {
        self.events.extend(iter);
    }
}

impl FromIterator<TraceEvent> for Trace {
    fn from_iter<T: IntoIterator<Item = TraceEvent>>(iter: T) -> Self {
        Self {
            events: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        let mut t = Trace::new();
        t.record(SimTime::from_millis(1), "edge", "detect", "d=1.45");
        t.record(SimTime::from_millis(2), "rsu", "denm_tx", "seq=1");
        t.record(SimTime::from_millis(3), "obu", "denm_rx", "seq=1");
        t
    }

    #[test]
    fn digest_is_stable_and_order_sensitive() {
        assert_eq!(sample().digest(), sample().digest());
        let mut reordered = Trace::new();
        reordered.record(SimTime::from_millis(2), "rsu", "denm_tx", "seq=1");
        reordered.record(SimTime::from_millis(1), "edge", "detect", "d=1.45");
        reordered.record(SimTime::from_millis(3), "obu", "denm_rx", "seq=1");
        assert_ne!(sample().digest(), reordered.digest());
    }

    #[test]
    fn digest_distinguishes_field_boundaries() {
        let mut a = Trace::new();
        a.record(SimTime::ZERO, "ab", "c", "");
        let mut b = Trace::new();
        b.record(SimTime::ZERO, "a", "bc", "");
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn kind_filters() {
        let t = sample();
        assert_eq!(t.of_kind("denm_tx").count(), 1);
        assert_eq!(t.first_of_kind("denm_rx").unwrap().node, "obu");
        assert!(t.first_of_kind("missing").is_none());
    }

    #[test]
    fn display_format() {
        let t = sample();
        let s = t.events()[0].to_string();
        assert!(s.contains("edge"), "{s}");
        assert!(s.contains("detect"), "{s}");
    }

    #[test]
    fn collect_and_extend() {
        let t: Trace = sample().events().to_vec().into_iter().collect();
        assert_eq!(t.len(), 3);
        let mut u = Trace::new();
        u.extend(sample().events().to_vec());
        assert_eq!(u.digest(), t.digest());
    }
}
