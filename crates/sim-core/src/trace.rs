//! Event tracing with a stable digest.
//!
//! Experiments record what happened and when (DENM sent, DENM received,
//! actuator command, vehicle halted). [`Trace`] collects these records and
//! computes an FNV-based digest over the full sequence, which the
//! determinism integration test uses to assert that two runs with the same
//! seed are byte-identical.
//!
//! Records live in a single string arena: one `Trace` owns one growing
//! byte buffer plus fixed-size range entries, so a whole run's trace
//! costs two allocations instead of three `String`s per record. Details
//! are usually formatted values — [`Trace::record_fmt`] writes them
//! straight into the arena with no intermediate `String`.

use crate::time::SimTime;
use std::fmt::{self, Write as _};

/// One record as stored: arena byte ranges for the three strings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct RawEvent {
    time: SimTime,
    node: (u32, u32),
    kind: (u32, u32),
    detail: (u32, u32),
}

/// One record in a trace, viewed against its trace's arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent<'a> {
    /// Simulation instant of the event.
    pub time: SimTime,
    /// Node that produced it (e.g. `"rsu"`, `"obu"`, `"vehicle"`).
    pub node: &'a str,
    /// Short machine-readable kind (e.g. `"denm_tx"`).
    pub kind: &'a str,
    /// Free-form detail.
    pub detail: &'a str,
}

impl fmt::Display for TraceEvent<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} {}: {}",
            self.time, self.node, self.kind, self.detail
        )
    }
}

/// An append-only event trace.
///
/// # Example
///
/// ```
/// use sim_core::{SimTime, Trace};
///
/// let mut t = Trace::new();
/// t.record(SimTime::from_millis(3), "rsu", "denm_tx", "seq=1");
/// assert_eq!(t.len(), 1);
/// let d1 = t.digest();
/// t.record_fmt(SimTime::from_millis(4), "obu", "denm_rx", format_args!("seq={}", 1));
/// assert_ne!(t.digest(), d1);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    arena: String,
    events: Vec<RawEvent>,
}

/// First-record arena reservation: covers a typical scenario run's
/// whole trace in one allocation, and large traces (wire decode of a
/// long run) keep growing past it amortised.
const ARENA_RESERVE: usize = 256;
const EVENTS_RESERVE: usize = 16;

impl Trace {
    /// Creates an empty trace. Allocation is deferred to the first
    /// record.
    pub fn new() -> Self {
        Self::default()
    }

    fn intern(&mut self, s: &str) -> (u32, u32) {
        let start = self.arena.len();
        self.arena.push_str(s);
        (start as u32, self.arena.len() as u32)
    }

    fn reserve_for_record(&mut self) {
        if self.arena.capacity() == 0 {
            self.arena.reserve(ARENA_RESERVE);
        }
        if self.events.capacity() == 0 {
            self.events.reserve(EVENTS_RESERVE);
        }
    }

    /// Appends a record.
    pub fn record(&mut self, time: SimTime, node: &str, kind: &str, detail: &str) {
        self.reserve_for_record();
        let node = self.intern(node);
        let kind = self.intern(kind);
        let detail = self.intern(detail);
        self.events.push(RawEvent {
            time,
            node,
            kind,
            detail,
        });
    }

    /// Appends a record whose detail is formatted directly into the
    /// trace arena — the allocation-free form of
    /// `record(time, node, kind, &format!(…))`.
    pub fn record_fmt(
        &mut self,
        time: SimTime,
        node: &str,
        kind: &str,
        detail: fmt::Arguments<'_>,
    ) {
        self.reserve_for_record();
        let node = self.intern(node);
        let kind = self.intern(kind);
        let start = self.arena.len();
        // Infallible: `String`'s `fmt::Write` never errors.
        let _ = self.arena.write_fmt(detail);
        let detail = (start as u32, self.arena.len() as u32);
        self.events.push(RawEvent {
            time,
            node,
            kind,
            detail,
        });
    }

    fn slice(&self, range: (u32, u32)) -> &str {
        self.arena
            .get(range.0 as usize..range.1 as usize)
            .unwrap_or("")
    }

    fn view(&self, e: &RawEvent) -> TraceEvent<'_> {
        TraceEvent {
            time: e.time,
            node: self.slice(e.node),
            kind: self.slice(e.kind),
            detail: self.slice(e.detail),
        }
    }

    /// All records, in insertion order.
    pub fn events(&self) -> TraceEvents<'_> {
        TraceEvents {
            trace: self,
            inner: self.events.iter(),
        }
    }

    /// Records matching `kind`.
    pub fn of_kind<'a>(&'a self, kind: &'a str) -> impl Iterator<Item = TraceEvent<'a>> + 'a {
        self.events().filter(move |e| e.kind == kind)
    }

    /// First record of the given kind, if any.
    pub fn first_of_kind(&self, kind: &str) -> Option<TraceEvent<'_>> {
        self.events().find(|e| e.kind == kind)
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Stable 64-bit digest over every record (FNV-1a over time, node,
    /// kind and detail). Identical traces — and only identical traces, up
    /// to hash collisions — produce the same digest.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
        };
        for e in &self.events {
            eat(&e.time.as_nanos().to_le_bytes());
            eat(self.slice(e.node).as_bytes());
            eat(&[0xFF]);
            eat(self.slice(e.kind).as_bytes());
            eat(&[0xFE]);
            eat(self.slice(e.detail).as_bytes());
            eat(&[0xFD]);
        }
        h
    }
}

/// Iterator over a trace's records ([`Trace::events`]).
#[derive(Debug, Clone)]
pub struct TraceEvents<'a> {
    trace: &'a Trace,
    inner: std::slice::Iter<'a, RawEvent>,
}

impl<'a> Iterator for TraceEvents<'a> {
    type Item = TraceEvent<'a>;
    fn next(&mut self) -> Option<TraceEvent<'a>> {
        self.inner.next().map(|e| self.trace.view(e))
    }
    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

impl ExactSizeIterator for TraceEvents<'_> {}

impl<'a> Extend<TraceEvent<'a>> for Trace {
    fn extend<T: IntoIterator<Item = TraceEvent<'a>>>(&mut self, iter: T) {
        for e in iter {
            self.record(e.time, e.node, e.kind, e.detail);
        }
    }
}

impl<'a> FromIterator<TraceEvent<'a>> for Trace {
    fn from_iter<T: IntoIterator<Item = TraceEvent<'a>>>(iter: T) -> Self {
        let mut t = Self::new();
        t.extend(iter);
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        let mut t = Trace::new();
        t.record(SimTime::from_millis(1), "edge", "detect", "d=1.45");
        t.record(SimTime::from_millis(2), "rsu", "denm_tx", "seq=1");
        t.record(SimTime::from_millis(3), "obu", "denm_rx", "seq=1");
        t
    }

    #[test]
    fn digest_is_stable_and_order_sensitive() {
        assert_eq!(sample().digest(), sample().digest());
        let mut reordered = Trace::new();
        reordered.record(SimTime::from_millis(2), "rsu", "denm_tx", "seq=1");
        reordered.record(SimTime::from_millis(1), "edge", "detect", "d=1.45");
        reordered.record(SimTime::from_millis(3), "obu", "denm_rx", "seq=1");
        assert_ne!(sample().digest(), reordered.digest());
    }

    #[test]
    fn digest_distinguishes_field_boundaries() {
        let mut a = Trace::new();
        a.record(SimTime::ZERO, "ab", "c", "");
        let mut b = Trace::new();
        b.record(SimTime::ZERO, "a", "bc", "");
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn digest_matches_pre_arena_layout() {
        // The digest byte stream is unchanged by the arena refactor:
        // this value was computed with the per-record `String` storage.
        let mut t = Trace::new();
        t.record(SimTime::from_millis(7), "rsu", "denm_tx", "seq=9");
        assert_eq!(t.digest(), {
            // Inline FNV-1a over the identical byte sequence.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for &b in SimTime::from_millis(7)
                .as_nanos()
                .to_le_bytes()
                .iter()
                .chain(b"rsu\xFFdenm_tx\xFEseq=9\xFD")
            {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            h
        });
    }

    #[test]
    fn record_fmt_matches_record() {
        let mut a = Trace::new();
        a.record(SimTime::from_millis(5), "world", "overrun", "x=1.250");
        let mut b = Trace::new();
        b.record_fmt(
            SimTime::from_millis(5),
            "world",
            "overrun",
            format_args!("x={:.3}", 1.25),
        );
        assert_eq!(a, b);
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn kind_filters() {
        let t = sample();
        assert_eq!(t.of_kind("denm_tx").count(), 1);
        assert_eq!(t.first_of_kind("denm_rx").unwrap().node, "obu");
        assert!(t.first_of_kind("missing").is_none());
    }

    #[test]
    fn display_format() {
        let t = sample();
        let s = t.events().next().unwrap().to_string();
        assert!(s.contains("edge"), "{s}");
        assert!(s.contains("detect"), "{s}");
    }

    #[test]
    fn collect_and_extend() {
        let source = sample();
        let t: Trace = source.events().collect();
        assert_eq!(t.len(), 3);
        let mut u = Trace::new();
        u.extend(source.events());
        assert_eq!(u.digest(), t.digest());
        assert_eq!(source.digest(), t.digest());
    }

    #[test]
    fn whole_run_trace_costs_two_allocations() {
        // The reserve policy front-loads one arena + one events
        // allocation; a typical run's worth of records fits inside.
        let mut t = Trace::new();
        for i in 0..10u64 {
            t.record_fmt(
                SimTime::from_millis(i),
                "rsu",
                "denm_tx",
                format_args!("seq={i}"),
            );
        }
        assert!(t.arena.capacity() == ARENA_RESERVE);
        assert!(t.events.capacity() == EVENTS_RESERVE);
    }
}
