//! The discrete-event scheduler.
//!
//! Events are opaque to the engine; the consumer supplies the event type
//! and an [`EventHandler`] that reacts to each event and may schedule
//! follow-ups. Events at the same instant are delivered in FIFO order of
//! scheduling (a stable tie-break), which is what makes traces repeatable.
//!
//! Two queue implementations share one contract:
//!
//! * [`EventQueue`] — the production *calendar queue*: a slab of event
//!   slots recycled through a free list (no per-schedule allocation in
//!   steady state) chained into time-window buckets, with a day cursor
//!   that walks the calendar. Schedule and pop are O(1) for the
//!   short-horizon schedule-after pattern the testbed generates. See
//!   DESIGN.md §12 for the bucket-width choice, the resize policy and
//!   the determinism argument.
//! * [`ReferenceQueue`] — the original `BinaryHeap` implementation, kept
//!   verbatim as the executable specification of the ordering contract.
//!   The differential harness (`tests/queue_differential.rs`) pins the
//!   calendar queue's pop order bitwise against it.
//!
//! # Ordering contract (both queues)
//!
//! Events are dispatched in ascending `(time, seq)` order, where `seq`
//! is the schedule-call counter: same-instant events run in the order
//! they were scheduled (FIFO). Scheduling into the past panics in both
//! debug and release builds. The `seq` counter wraps at `u64::MAX`
//! (~584 years of one-event-per-simulated-nanosecond scheduling); after
//! a wrap, post-wrap events sort *before* still-pending pre-wrap events
//! at the same instant — deterministically, and identically in both
//! implementations (covered by `seq_wrap_orders_post_wrap_first`).

use crate::time::{SimDuration, SimTime};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Sentinel index terminating slab chains (free list and bucket chains).
const SLOT_NONE: u32 = u32::MAX;

/// log2 of the calendar bucket width in nanoseconds: 2^20 ns ≈ 1.05 ms.
/// The testbed's schedule-after horizon clusters between microseconds
/// (channel access, airtime) and a few hundred milliseconds (camera
/// frames, CAM cadence), so a ~1 ms "day" keeps same-window events in
/// one bucket while bounding the cursor walk across quiet gaps.
const DAY_SHIFT: u32 = 20;

/// Initial bucket count (power of two so `day & mask` is the bucket).
const INITIAL_BUCKETS: usize = 64;

/// Bucket-count ceiling for the doubling resize.
const MAX_BUCKETS: usize = 1 << 14;

/// Consecutive empty days the pop cursor scans before giving up and
/// jumping straight to the minimum pending day via an O(len) slab scan
/// (far-future outliers would otherwise walk the calendar day by day).
const ROTATION_SCAN: u64 = 8;

/// One slab slot: a pending event or a free-list link.
///
/// `next` chains the slot into its bucket while occupied and into the
/// free list while vacant; `time`/`seq` are stale in vacant slots and
/// every consumer filters on `event.is_some()`.
#[derive(Debug)]
struct Slot<E> {
    time: u64,
    seq: u64,
    next: u32,
    event: Option<E>,
}

/// Calendar-queue event scheduler with stable same-instant ordering.
///
/// Drop-in replacement for the original heap-based queue (now
/// [`ReferenceQueue`]): same API, same panics, bitwise-identical pop
/// order. See the crate-level example for end-to-end usage.
#[derive(Debug)]
pub struct EventQueue<E> {
    /// Slab of event slots; vacant slots are threaded on `free_head`.
    slots: Vec<Slot<E>>,
    free_head: u32,
    /// Head slot index per bucket; `SLOT_NONE` marks an empty bucket.
    buckets: Vec<u32>,
    /// Cursor: no pending event lives on a day before this one.
    day: u64,
    len: usize,
    seq: u64,
    now: SimTime,
    dispatched: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue positioned at [`SimTime::ZERO`].
    pub fn new() -> Self {
        Self {
            slots: Vec::with_capacity(16),
            free_head: SLOT_NONE,
            buckets: vec![SLOT_NONE; INITIAL_BUCKETS],
            day: 0,
            len: 0,
            seq: 0,
            now: SimTime::ZERO,
            dispatched: 0,
        }
    }

    /// Returns the queue to its freshly-constructed state — no pending
    /// events, time at zero, `seq` restarted — while keeping the slab
    /// and bucket allocations. A recycled queue behaves bit-for-bit
    /// like [`EventQueue::new`]: dispatch order depends only on
    /// `(time, seq)`, and both restart from zero here.
    pub fn reset(&mut self) {
        self.slots.clear();
        self.free_head = SLOT_NONE;
        for b in &mut self.buckets {
            *b = SLOT_NONE;
        }
        self.day = 0;
        self.len = 0;
        self.seq = 0;
        self.now = SimTime::ZERO;
        self.dispatched = 0;
    }

    /// Current simulation time (the timestamp of the last dispatched
    /// event, or zero before the first).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events dispatched so far.
    pub fn dispatched(&self) -> u64 {
        self.dispatched
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.len
    }

    /// Schedules `event` at the absolute instant `time`.
    ///
    /// Events scheduled for the same instant are dispatched in the
    /// order they were scheduled (FIFO): each call consumes a strictly
    /// increasing sequence number that breaks time ties. The counter
    /// wraps at `u64::MAX` — see the module docs for the (documented,
    /// deterministic) post-wrap ordering.
    ///
    /// # Panics
    ///
    /// Panics — in release builds too — if `time` is before the queue's
    /// current time: scheduling into the past is always a logic error,
    /// and silently accepting it would let a pending event violate the
    /// monotonic-dispatch invariant the latency accounting relies on.
    pub fn schedule_at(&mut self, time: SimTime, event: E) {
        assert!(
            time >= self.now,
            "cannot schedule into the past ({} < {})",
            time,
            self.now
        );
        let seq = self.seq;
        self.seq = self.seq.wrapping_add(1);
        let t = time.as_nanos();
        let day = t >> DAY_SHIFT;
        // The cursor must never sit past a pending day. An empty queue
        // re-anchors it outright (the cursor may have drifted arbitrarily
        // far forward while draining); otherwise only pull it backward.
        if self.len == 0 || day < self.day {
            self.day = day;
        }
        let idx = self.alloc_slot(t, seq, event);
        let mask = self.buckets.len() as u64 - 1;
        let b = (day & mask) as usize;
        let head = self.buckets.get(b).copied().unwrap_or(SLOT_NONE);
        if let Some(slot) = self.slots.get_mut(idx as usize) {
            slot.next = head;
        }
        if let Some(h) = self.buckets.get_mut(b) {
            *h = idx;
        }
        self.len += 1;
        if self.len > self.buckets.len() * 4 && self.buckets.len() < MAX_BUCKETS {
            self.grow_buckets();
        }
    }

    /// Schedules `event` at `base + delay`.
    ///
    /// Same FIFO tie-break contract as [`EventQueue::schedule_at`];
    /// determinism tests rely on it — same-instant handler follow-ups
    /// always run in scheduling order.
    ///
    /// # Panics
    ///
    /// Panics if `base + delay` is before the queue's current time.
    pub fn schedule_after(&mut self, base: SimTime, delay: SimDuration, event: E) {
        self.schedule_at(base + delay, event);
    }

    /// Pops the next event if one exists at or before `until`.
    ///
    /// Public so the differential harness and batch drivers can drive
    /// the queue directly; [`run`] remains the usual entry point.
    pub fn pop_next(&mut self, until: SimTime) -> Option<(SimTime, E)> {
        if self.len == 0 {
            return None;
        }
        let until_n = until.as_nanos();
        let until_day = until_n >> DAY_SHIFT;
        let mask = self.buckets.len() as u64 - 1;
        let mut empty_scanned: u64 = 0;
        loop {
            // Invariant: no pending event's day precedes the cursor, so
            // a cursor past `until`'s day proves nothing is due yet.
            if self.day > until_day {
                return None;
            }
            let b = (self.day & mask) as usize;
            // All events of the cursor day share this bucket, so the
            // minimal (time, seq) among them is the global minimum.
            let mut best: Option<(u64, u64)> = None;
            let (mut best_idx, mut best_prev) = (SLOT_NONE, SLOT_NONE);
            let mut prev = SLOT_NONE;
            let mut cur = self.buckets.get(b).copied().unwrap_or(SLOT_NONE);
            while let Some(slot) = self.slots.get(cur as usize) {
                if slot.time >> DAY_SHIFT == self.day {
                    let key = (slot.time, slot.seq);
                    if best.is_none_or(|bk| key < bk) {
                        best = Some(key);
                        best_idx = cur;
                        best_prev = prev;
                    }
                }
                prev = cur;
                cur = slot.next;
            }
            if let Some((t, _)) = best {
                if t > until_n {
                    return None;
                }
                return self.take_slot(b, best_idx, best_prev);
            }
            self.day += 1;
            empty_scanned += 1;
            if empty_scanned >= ROTATION_SCAN {
                // Quiet stretch: jump straight to the next pending day.
                self.jump_to_min_day();
                empty_scanned = 0;
            }
        }
    }

    /// Pops *every* event sharing the minimal pending timestamp (if it
    /// is at or before `until`), appending them to `out` in FIFO order,
    /// and returns that timestamp. Batch drivers use this to dispatch
    /// same-instant events together; follow-ups a handler schedules at
    /// the same instant land in the *next* batch, which preserves the
    /// exact global `(time, seq)` dispatch order of the one-at-a-time
    /// [`run`] loop.
    pub fn pop_batch(&mut self, until: SimTime, out: &mut Vec<E>) -> Option<SimTime> {
        let (t, e) = self.pop_next(until)?;
        out.push(e);
        while let Some((_, e2)) = self.pop_next(t) {
            out.push(e2);
        }
        Some(t)
    }

    /// Test support: forces the FIFO tie-break counter so harnesses can
    /// exercise the documented wraparound ordering without scheduling
    /// 2^64 events. Not part of the scheduling API.
    #[doc(hidden)]
    pub fn force_seq(&mut self, seq: u64) {
        self.seq = seq;
    }

    /// Takes a slot out of the free list, or grows the slab.
    fn alloc_slot(&mut self, time: u64, seq: u64, event: E) -> u32 {
        let free = self.free_head;
        if let Some(slot) = self.slots.get_mut(free as usize) {
            self.free_head = slot.next;
            slot.time = time;
            slot.seq = seq;
            slot.next = SLOT_NONE;
            slot.event = Some(event);
            free
        } else {
            // Slab indices are u32 with SLOT_NONE reserved; 2^32 − 1
            // *simultaneously pending* events (hundreds of GiB) is out
            // of scope by orders of magnitude, so this is debug-only.
            debug_assert!(self.slots.len() < SLOT_NONE as usize);
            let idx = self.slots.len() as u32;
            self.slots.push(Slot {
                time,
                seq,
                next: SLOT_NONE,
                event: Some(event),
            });
            idx
        }
    }

    /// Unlinks `idx` (preceded by `prev`, or the bucket head) from
    /// bucket `b`, recycles the slot, and returns its payload.
    fn take_slot(&mut self, b: usize, idx: u32, prev: u32) -> Option<(SimTime, E)> {
        let (next, time, event) = match self.slots.get_mut(idx as usize) {
            Some(s) => (s.next, s.time, s.event.take()),
            // Unreachable: `idx` was just read out of a live chain.
            None => return None,
        };
        if let Some(p) = self.slots.get_mut(prev as usize) {
            p.next = next;
        } else if let Some(h) = self.buckets.get_mut(b) {
            *h = next;
        }
        if let Some(s) = self.slots.get_mut(idx as usize) {
            s.next = self.free_head;
        }
        self.free_head = idx;
        self.len -= 1;
        let t = SimTime::from_nanos(time);
        self.now = t;
        self.dispatched += 1;
        event.map(|e| (t, e))
    }

    /// Advances the cursor straight to the earliest pending day.
    /// O(slab) — only taken after [`ROTATION_SCAN`] empty days, i.e.
    /// across quiet gaps or toward far-future outliers.
    fn jump_to_min_day(&mut self) {
        let mut min_day = u64::MAX;
        for s in &self.slots {
            if s.event.is_some() {
                min_day = min_day.min(s.time >> DAY_SHIFT);
            }
        }
        if min_day != u64::MAX {
            self.day = min_day;
        }
    }

    /// Doubles the bucket count and re-chains every occupied slot.
    /// Chain order within a bucket is irrelevant — pops min-scan on
    /// `(time, seq)` — so the rebuild cannot perturb dispatch order.
    fn grow_buckets(&mut self) {
        let new_len = (self.buckets.len() * 2).min(MAX_BUCKETS);
        self.buckets.clear();
        self.buckets.resize(new_len, SLOT_NONE);
        let mask = new_len as u64 - 1;
        for i in 0..self.slots.len() {
            let (day, occupied) = match self.slots.get(i) {
                Some(s) => (s.time >> DAY_SHIFT, s.event.is_some()),
                None => continue,
            };
            if !occupied {
                // Vacant slots keep their free-list links untouched.
                continue;
            }
            let b = (day & mask) as usize;
            let head = self.buckets.get(b).copied().unwrap_or(SLOT_NONE);
            if let Some(s) = self.slots.get_mut(i) {
                s.next = head;
            }
            if let Some(h) = self.buckets.get_mut(b) {
                *h = i as u32;
            }
        }
    }
}

/// A pending event in the reference queue: ordered by time, then by
/// insertion sequence.
#[derive(Debug)]
struct Pending<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Pending<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Pending<E> {}
impl<E> PartialOrd for Pending<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Pending<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// The original min-heap event queue, kept as the executable
/// specification of the ordering contract. Same API and same panics as
/// [`EventQueue`]; the differential proptest harness asserts the two
/// produce bitwise-identical pop sequences.
#[derive(Debug)]
pub struct ReferenceQueue<E> {
    heap: BinaryHeap<Reverse<Pending<E>>>,
    seq: u64,
    now: SimTime,
    dispatched: u64,
}

impl<E> Default for ReferenceQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> ReferenceQueue<E> {
    /// Creates an empty queue positioned at [`SimTime::ZERO`].
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
            dispatched: 0,
        }
    }

    /// Current simulation time (the timestamp of the last dispatched
    /// event, or zero before the first).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events dispatched so far.
    pub fn dispatched(&self) -> u64 {
        self.dispatched
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.heap.len()
    }

    /// Schedules `event` at the absolute instant `time`.
    ///
    /// # Panics
    ///
    /// Panics (release builds included) if `time` is before the queue's
    /// current time — scheduling into the past is always a logic error.
    pub fn schedule_at(&mut self, time: SimTime, event: E) {
        assert!(
            time >= self.now,
            "cannot schedule into the past ({} < {})",
            time,
            self.now
        );
        let seq = self.seq;
        self.seq = self.seq.wrapping_add(1);
        self.heap.push(Reverse(Pending { time, seq, event }));
    }

    /// Schedules `event` at `base + delay` (same contract as
    /// [`EventQueue::schedule_after`]).
    ///
    /// # Panics
    ///
    /// Panics if `base + delay` is before the queue's current time.
    pub fn schedule_after(&mut self, base: SimTime, delay: SimDuration, event: E) {
        self.schedule_at(base + delay, event);
    }

    /// Pops the next event if one exists at or before `until`.
    pub fn pop_next(&mut self, until: SimTime) -> Option<(SimTime, E)> {
        if let Some(Reverse(head)) = self.heap.peek() {
            if head.time > until {
                return None;
            }
        }
        self.heap.pop().map(|Reverse(p)| {
            self.now = p.time;
            self.dispatched += 1;
            (p.time, p.event)
        })
    }

    /// Batch form of [`ReferenceQueue::pop_next`]; same contract as
    /// [`EventQueue::pop_batch`].
    pub fn pop_batch(&mut self, until: SimTime, out: &mut Vec<E>) -> Option<SimTime> {
        let (t, e) = self.pop_next(until)?;
        out.push(e);
        while let Some((_, e2)) = self.pop_next(t) {
            out.push(e2);
        }
        Some(t)
    }

    /// Test support: forces the FIFO tie-break counter (see
    /// [`EventQueue::force_seq`]).
    #[doc(hidden)]
    pub fn force_seq(&mut self, seq: u64) {
        self.seq = seq;
    }
}

/// Consumer of dispatched events.
pub trait EventHandler {
    /// The event type flowing through the queue.
    type Event;

    /// Reacts to one event; may schedule follow-up events on `queue`.
    fn handle(&mut self, now: SimTime, event: Self::Event, queue: &mut EventQueue<Self::Event>);
}

/// Runs the simulation until the queue is empty or the next event is after
/// `until`. Returns the time of the last dispatched event (or the queue's
/// prior time if nothing ran).
pub fn run<H: EventHandler>(
    handler: &mut H,
    queue: &mut EventQueue<H::Event>,
    until: SimTime,
) -> SimTime {
    while let Some((now, event)) = queue.pop_next(until) {
        handler.handle(now, event, queue);
    }
    queue.now()
}

/// Batched variant of [`run`]: pops every event of one instant in one
/// queue operation, then hands them to the handler in FIFO order.
/// Dispatch order is *identical* to [`run`] — same-instant follow-ups a
/// handler schedules mid-batch carry higher sequence numbers than the
/// batch, so they run in the next batch exactly where the serial loop
/// would have placed them. `scratch` is the caller-owned batch buffer,
/// drained every iteration and reused so the loop allocates nothing in
/// steady state.
pub fn run_batched<H: EventHandler>(
    handler: &mut H,
    queue: &mut EventQueue<H::Event>,
    until: SimTime,
    scratch: &mut Vec<H::Event>,
) -> SimTime {
    scratch.clear();
    while let Some(now) = queue.pop_batch(until, scratch) {
        for event in scratch.drain(..) {
            handler.handle(now, event, queue);
        }
    }
    queue.now()
}

/// Runs the simulation until no events remain, with a safety cap on the
/// number of dispatches to catch runaway self-scheduling loops.
///
/// # Panics
///
/// Panics if more than `max_events` events are dispatched.
pub fn run_until_idle<H: EventHandler>(
    handler: &mut H,
    queue: &mut EventQueue<H::Event>,
    max_events: u64,
) -> SimTime {
    let start = queue.dispatched();
    while let Some((now, event)) = queue.pop_next(SimTime::MAX) {
        handler.handle(now, event, queue);
        assert!(
            queue.dispatched() - start <= max_events,
            "event budget exhausted: {} events dispatched",
            max_events
        );
    }
    queue.now()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct Recorder {
        seen: Vec<(u64, &'static str)>,
    }

    impl EventHandler for Recorder {
        type Event = &'static str;
        fn handle(&mut self, now: SimTime, event: &'static str, _q: &mut EventQueue<&'static str>) {
            self.seen.push((now.as_millis(), event));
        }
    }

    #[test]
    fn events_dispatch_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_millis(30), "c");
        q.schedule_at(SimTime::from_millis(10), "a");
        q.schedule_at(SimTime::from_millis(20), "b");
        let mut r = Recorder::default();
        run(&mut r, &mut q, SimTime::MAX);
        assert_eq!(r.seen, vec![(10, "a"), (20, "b"), (30, "c")]);
    }

    #[test]
    fn same_instant_is_fifo() {
        let mut q = EventQueue::new();
        for name in ["first", "second", "third"] {
            q.schedule_at(SimTime::from_millis(5), name);
        }
        let mut r = Recorder::default();
        run(&mut r, &mut q, SimTime::MAX);
        assert_eq!(r.seen, vec![(5, "first"), (5, "second"), (5, "third")]);
    }

    #[test]
    fn run_respects_until_bound() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_millis(10), "in");
        q.schedule_at(SimTime::from_millis(100), "out");
        let mut r = Recorder::default();
        run(&mut r, &mut q, SimTime::from_millis(50));
        assert_eq!(r.seen, vec![(10, "in")]);
        assert_eq!(q.pending(), 1);
        // Resume later.
        run(&mut r, &mut q, SimTime::MAX);
        assert_eq!(r.seen.len(), 2);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_past_panics() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_millis(10), "a");
        let mut r = Recorder::default();
        run(&mut r, &mut q, SimTime::MAX);
        q.schedule_at(SimTime::from_millis(5), "b");
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn reference_scheduling_into_past_panics() {
        let mut q = ReferenceQueue::new();
        q.schedule_at(SimTime::from_millis(10), "a");
        let _ = q.pop_next(SimTime::MAX);
        q.schedule_at(SimTime::from_millis(5), "b");
    }

    #[test]
    fn scheduling_at_current_instant_is_allowed() {
        // `time == now` is the boundary the past-scheduling panic must
        // NOT cover: a handler re-scheduling at its own dispatch instant
        // is legal and runs after already-pending same-instant events.
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_millis(10), "a");
        let (t, _) = q.pop_next(SimTime::MAX).unwrap();
        q.schedule_at(t, "b");
        assert_eq!(q.pop_next(SimTime::MAX), Some((t, "b")));
    }

    struct SelfScheduler;
    impl EventHandler for SelfScheduler {
        type Event = ();
        fn handle(&mut self, now: SimTime, _e: (), q: &mut EventQueue<()>) {
            q.schedule_after(now, SimDuration::from_millis(1), ());
        }
    }

    #[test]
    #[should_panic(expected = "event budget exhausted")]
    fn runaway_loop_is_caught() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::ZERO, ());
        run_until_idle(&mut SelfScheduler, &mut q, 1000);
    }

    #[test]
    fn handler_scheduled_followups_run() {
        struct Chain(u32);
        impl EventHandler for Chain {
            type Event = u32;
            fn handle(&mut self, now: SimTime, ev: u32, q: &mut EventQueue<u32>) {
                self.0 = ev;
                if ev < 5 {
                    q.schedule_after(now, SimDuration::from_millis(1), ev + 1);
                }
            }
        }
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::ZERO, 1);
        let mut c = Chain(0);
        let end = run(&mut c, &mut q, SimTime::MAX);
        assert_eq!(c.0, 5);
        assert_eq!(end, SimTime::from_millis(4));
        assert_eq!(q.dispatched(), 5);
    }

    /// Drains a queue into `(millis, event)` pairs via `pop_next`.
    fn drain(q: &mut EventQueue<u32>) -> Vec<(u64, u32)> {
        let mut out = Vec::new();
        while let Some((t, e)) = q.pop_next(SimTime::MAX) {
            out.push((t.as_millis(), e));
        }
        out
    }

    #[test]
    fn calendar_resize_preserves_order() {
        // 500 pending events force two bucket doublings (64 → 256).
        let mut q = EventQueue::new();
        let mut r = ReferenceQueue::new();
        for i in 0..500u32 {
            let t = SimTime::from_micros(u64::from((i * 7919) % 997) * 100);
            q.schedule_at(t, i);
            r.schedule_at(t, i);
        }
        let got = drain(&mut q);
        let mut want = Vec::new();
        while let Some((t, e)) = r.pop_next(SimTime::MAX) {
            want.push((t.as_millis(), e));
        }
        assert_eq!(got, want);
    }

    #[test]
    fn far_future_outlier_pops_after_cursor_jump() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_millis(1), 1);
        // ~10 s ahead: thousands of empty calendar days to skip.
        q.schedule_at(SimTime::from_secs(10), 2);
        q.schedule_at(SimTime::from_millis(2), 3);
        assert_eq!(drain(&mut q), vec![(1, 1), (2, 3), (10_000, 2)]);
    }

    #[test]
    fn cursor_rewinds_for_late_near_schedules() {
        // Draining past a quiet gap pushes the cursor forward; a
        // subsequent near-term schedule must pull it back.
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(5), 1);
        assert_eq!(q.pop_next(SimTime::MAX), Some((SimTime::from_secs(5), 1)));
        assert_eq!(q.pop_next(SimTime::MAX), None);
        q.schedule_at(SimTime::from_secs(5) + SimDuration::from_nanos(1), 2);
        assert_eq!(q.pending(), 1);
        assert!(q.pop_next(SimTime::MAX).is_some());
    }

    #[test]
    fn seq_wrap_orders_post_wrap_first() {
        // The documented wraparound contract: after `seq` wraps,
        // same-instant post-wrap events sort before pre-wrap ones —
        // identically in both queues.
        let t = SimTime::from_millis(1);
        let mut q = EventQueue::new();
        let mut r = ReferenceQueue::new();
        q.force_seq(u64::MAX - 1);
        r.force_seq(u64::MAX - 1);
        for ev in [10u32, 11, 12, 13] {
            q.schedule_at(t, ev);
            r.schedule_at(t, ev);
        }
        // Scheduled seqs: MAX-1, MAX, 0, 1 → pop order 12, 13, 10, 11.
        let got = drain(&mut q);
        let mut want = Vec::new();
        while let Some((tt, e)) = r.pop_next(SimTime::MAX) {
            want.push((tt.as_millis(), e));
        }
        assert_eq!(got, vec![(1, 12), (1, 13), (1, 10), (1, 11)]);
        assert_eq!(got, want);
    }

    #[test]
    fn pop_batch_groups_one_instant() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_millis(5), 1);
        q.schedule_at(SimTime::from_millis(5), 2);
        q.schedule_at(SimTime::from_millis(7), 3);
        let mut batch = Vec::new();
        assert_eq!(
            q.pop_batch(SimTime::MAX, &mut batch),
            Some(SimTime::from_millis(5))
        );
        assert_eq!(batch, vec![1, 2]);
        batch.clear();
        assert_eq!(
            q.pop_batch(SimTime::MAX, &mut batch),
            Some(SimTime::from_millis(7))
        );
        assert_eq!(batch, vec![3]);
        batch.clear();
        assert_eq!(q.pop_batch(SimTime::MAX, &mut batch), None);
    }

    #[test]
    fn run_batched_matches_run_with_same_instant_followups() {
        // A handler that, on its first event of an instant, schedules a
        // follow-up at that same instant — the order-sensitive case.
        #[derive(Default)]
        struct Echo {
            seen: Vec<(u64, u32)>,
        }
        impl EventHandler for Echo {
            type Event = u32;
            fn handle(&mut self, now: SimTime, ev: u32, q: &mut EventQueue<u32>) {
                self.seen.push((now.as_millis(), ev));
                if ev < 100 && self.seen.len() % 2 == 1 {
                    q.schedule_at(now, ev + 100);
                }
            }
        }
        let schedule = [(5u64, 1u32), (5, 2), (5, 3), (9, 4), (9, 5)];
        let mut serial = Echo::default();
        let mut qs = EventQueue::new();
        for (ms, ev) in schedule {
            qs.schedule_at(SimTime::from_millis(ms), ev);
        }
        run(&mut serial, &mut qs, SimTime::MAX);

        let mut batched = Echo::default();
        let mut qb = EventQueue::new();
        for (ms, ev) in schedule {
            qb.schedule_at(SimTime::from_millis(ms), ev);
        }
        let mut scratch = Vec::new();
        run_batched(&mut batched, &mut qb, SimTime::MAX, &mut scratch);
        assert_eq!(serial.seen, batched.seen);
        assert_eq!(qs.dispatched(), qb.dispatched());
    }

    #[test]
    fn slab_slots_are_recycled() {
        // Steady-state schedule/pop churn must not grow the slab: the
        // free list recycles every popped slot.
        let mut q = EventQueue::new();
        for round in 0..1000u64 {
            q.schedule_at(SimTime::from_micros(round * 10), round as u32);
            let _ = q.pop_next(SimTime::MAX);
        }
        assert_eq!(q.pending(), 0);
        assert_eq!(q.dispatched(), 1000);
        // One live event at a time → the slab never needed >1 slot, and
        // with_capacity(16) means it never reallocated at all.
        assert!(q.slots.len() <= 1, "slab grew to {}", q.slots.len());
    }
}
