//! The discrete-event scheduler.
//!
//! Events are opaque to the engine; the consumer supplies the event type
//! and an [`EventHandler`] that reacts to each event and may schedule
//! follow-ups. Events at the same instant are delivered in FIFO order of
//! scheduling (a stable tie-break), which is what makes traces repeatable.

use crate::time::{SimDuration, SimTime};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A pending event: ordered by time, then by insertion sequence.
#[derive(Debug)]
struct Pending<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Pending<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Pending<E> {}
impl<E> PartialOrd for Pending<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Pending<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// Min-heap event queue with stable same-instant ordering.
///
/// See the crate-level example for end-to-end usage.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Pending<E>>>,
    seq: u64,
    now: SimTime,
    dispatched: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue positioned at [`SimTime::ZERO`].
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
            dispatched: 0,
        }
    }

    /// Current simulation time (the timestamp of the last dispatched
    /// event, or zero before the first).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events dispatched so far.
    pub fn dispatched(&self) -> u64 {
        self.dispatched
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.heap.len()
    }

    /// Schedules `event` at the absolute instant `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is before the queue's current time — scheduling
    /// into the past is always a logic error.
    pub fn schedule_at(&mut self, time: SimTime, event: E) {
        assert!(
            time >= self.now,
            "cannot schedule into the past ({} < {})",
            time,
            self.now
        );
        let seq = self.seq;
        // The FIFO tie-break relies on `seq` being strictly monotonic; a
        // wrapped counter would silently reorder same-instant events. At
        // one event per nanosecond a u64 lasts ~584 years of simulated
        // scheduling, so this only fires on genuine logic errors.
        debug_assert!(
            seq < u64::MAX,
            "event sequence counter exhausted; FIFO tie-break would wrap"
        );
        self.seq = self.seq.wrapping_add(1);
        self.heap.push(Reverse(Pending { time, seq, event }));
    }

    /// Schedules `event` at `base + delay`.
    ///
    /// Events scheduled for the same instant are dispatched in the order
    /// they were scheduled (FIFO): each call consumes a strictly
    /// increasing sequence number that breaks time ties, regardless of
    /// whether it arrived via this method or [`EventQueue::schedule_at`].
    /// Determinism tests rely on this contract — same-instant handler
    /// follow-ups always run in scheduling order.
    ///
    /// # Panics
    ///
    /// Panics if `base + delay` is before the queue's current time.
    pub fn schedule_after(&mut self, base: SimTime, delay: SimDuration, event: E) {
        self.schedule_at(base + delay, event);
    }

    /// Pops the next event if one exists at or before `until`.
    fn pop_next(&mut self, until: SimTime) -> Option<(SimTime, E)> {
        if let Some(Reverse(head)) = self.heap.peek() {
            if head.time > until {
                return None;
            }
        }
        self.heap.pop().map(|Reverse(p)| {
            self.now = p.time;
            self.dispatched += 1;
            (p.time, p.event)
        })
    }
}

/// Consumer of dispatched events.
pub trait EventHandler {
    /// The event type flowing through the queue.
    type Event;

    /// Reacts to one event; may schedule follow-up events on `queue`.
    fn handle(&mut self, now: SimTime, event: Self::Event, queue: &mut EventQueue<Self::Event>);
}

/// Runs the simulation until the queue is empty or the next event is after
/// `until`. Returns the time of the last dispatched event (or the queue's
/// prior time if nothing ran).
pub fn run<H: EventHandler>(
    handler: &mut H,
    queue: &mut EventQueue<H::Event>,
    until: SimTime,
) -> SimTime {
    while let Some((now, event)) = queue.pop_next(until) {
        handler.handle(now, event, queue);
    }
    queue.now()
}

/// Runs the simulation until no events remain, with a safety cap on the
/// number of dispatches to catch runaway self-scheduling loops.
///
/// # Panics
///
/// Panics if more than `max_events` events are dispatched.
pub fn run_until_idle<H: EventHandler>(
    handler: &mut H,
    queue: &mut EventQueue<H::Event>,
    max_events: u64,
) -> SimTime {
    let start = queue.dispatched();
    while let Some((now, event)) = queue.pop_next(SimTime::MAX) {
        handler.handle(now, event, queue);
        assert!(
            queue.dispatched() - start <= max_events,
            "event budget exhausted: {} events dispatched",
            max_events
        );
    }
    queue.now()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct Recorder {
        seen: Vec<(u64, &'static str)>,
    }

    impl EventHandler for Recorder {
        type Event = &'static str;
        fn handle(&mut self, now: SimTime, event: &'static str, _q: &mut EventQueue<&'static str>) {
            self.seen.push((now.as_millis(), event));
        }
    }

    #[test]
    fn events_dispatch_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_millis(30), "c");
        q.schedule_at(SimTime::from_millis(10), "a");
        q.schedule_at(SimTime::from_millis(20), "b");
        let mut r = Recorder::default();
        run(&mut r, &mut q, SimTime::MAX);
        assert_eq!(r.seen, vec![(10, "a"), (20, "b"), (30, "c")]);
    }

    #[test]
    fn same_instant_is_fifo() {
        let mut q = EventQueue::new();
        for name in ["first", "second", "third"] {
            q.schedule_at(SimTime::from_millis(5), name);
        }
        let mut r = Recorder::default();
        run(&mut r, &mut q, SimTime::MAX);
        assert_eq!(r.seen, vec![(5, "first"), (5, "second"), (5, "third")]);
    }

    #[test]
    fn run_respects_until_bound() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_millis(10), "in");
        q.schedule_at(SimTime::from_millis(100), "out");
        let mut r = Recorder::default();
        run(&mut r, &mut q, SimTime::from_millis(50));
        assert_eq!(r.seen, vec![(10, "in")]);
        assert_eq!(q.pending(), 1);
        // Resume later.
        run(&mut r, &mut q, SimTime::MAX);
        assert_eq!(r.seen.len(), 2);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_past_panics() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_millis(10), "a");
        let mut r = Recorder::default();
        run(&mut r, &mut q, SimTime::MAX);
        q.schedule_at(SimTime::from_millis(5), "b");
    }

    struct SelfScheduler;
    impl EventHandler for SelfScheduler {
        type Event = ();
        fn handle(&mut self, now: SimTime, _e: (), q: &mut EventQueue<()>) {
            q.schedule_after(now, SimDuration::from_millis(1), ());
        }
    }

    #[test]
    #[should_panic(expected = "event budget exhausted")]
    fn runaway_loop_is_caught() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::ZERO, ());
        run_until_idle(&mut SelfScheduler, &mut q, 1000);
    }

    #[test]
    fn handler_scheduled_followups_run() {
        struct Chain(u32);
        impl EventHandler for Chain {
            type Event = u32;
            fn handle(&mut self, now: SimTime, ev: u32, q: &mut EventQueue<u32>) {
                self.0 = ev;
                if ev < 5 {
                    q.schedule_after(now, SimDuration::from_millis(1), ev + 1);
                }
            }
        }
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::ZERO, 1);
        let mut c = Chain(0);
        let end = run(&mut c, &mut q, SimTime::MAX);
        assert_eq!(c.0, 5);
        assert_eq!(end, SimTime::from_millis(4));
        assert_eq!(q.dispatched(), 5);
    }
}
