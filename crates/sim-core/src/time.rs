//! Simulated time: instants and durations with nanosecond resolution.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An instant on the simulated timeline, in nanoseconds from simulation
/// start.
///
/// # Example
///
/// ```
/// use sim_core::{SimDuration, SimTime};
/// let t = SimTime::from_millis(5) + SimDuration::from_micros(250);
/// assert_eq!(t.as_nanos(), 5_250_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation origin.
    pub const ZERO: SimTime = SimTime(0);
    /// The far future; useful as a "run until idle" bound.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from nanoseconds since simulation start.
    pub const fn from_nanos(ns: u64) -> Self {
        Self(ns)
    }

    /// Creates an instant from microseconds since simulation start.
    pub const fn from_micros(us: u64) -> Self {
        Self(us * 1_000)
    }

    /// Creates an instant from milliseconds since simulation start.
    pub const fn from_millis(ms: u64) -> Self {
        Self(ms * 1_000_000)
    }

    /// Creates an instant from seconds since simulation start.
    pub const fn from_secs(s: u64) -> Self {
        Self(s * 1_000_000_000)
    }

    /// Nanoseconds since simulation start.
    pub const fn as_nanos(&self) -> u64 {
        self.0
    }

    /// Whole microseconds since simulation start.
    pub const fn as_micros(&self) -> u64 {
        self.0 / 1_000
    }

    /// Whole milliseconds since simulation start.
    pub const fn as_millis(&self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds since simulation start as a float.
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self` (a scheduling bug).
    pub fn duration_since(&self, earlier: SimTime) -> SimDuration {
        assert!(
            earlier.0 <= self.0,
            "duration_since called with a later instant ({} > {})",
            earlier,
            self
        );
        SimDuration(self.0 - earlier.0)
    }

    /// Duration since `earlier`, or zero if `earlier` is in the future.
    pub fn saturating_duration_since(&self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

/// A span of simulated time, in nanoseconds.
///
/// # Example
///
/// ```
/// use sim_core::SimDuration;
/// let d = SimDuration::from_millis(2) * 3;
/// assert_eq!(d.as_millis(), 6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        Self(ns)
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Self(us * 1_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Self(ms * 1_000_000)
    }

    /// Creates a duration from seconds.
    pub const fn from_secs(s: u64) -> Self {
        Self(s * 1_000_000_000)
    }

    /// Creates a duration from fractional seconds, saturating at zero for
    /// negative input.
    pub fn from_secs_f64(s: f64) -> Self {
        Self((s.max(0.0) * 1e9).round() as u64)
    }

    /// Nanoseconds in this duration.
    pub const fn as_nanos(&self) -> u64 {
        self.0
    }

    /// Whole microseconds in this duration.
    pub const fn as_micros(&self) -> u64 {
        self.0 / 1_000
    }

    /// Whole milliseconds in this duration.
    pub const fn as_millis(&self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds as a float.
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Whether this duration is zero.
    pub const fn is_zero(&self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else {
            write!(f, "{}µs", self.0 as f64 / 1e3)
        }
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn conversions() {
        assert_eq!(SimTime::from_secs(1).as_millis(), 1000);
        assert_eq!(SimTime::from_millis(1).as_micros(), 1000);
        assert_eq!(SimTime::from_micros(1).as_nanos(), 1000);
        assert_eq!(SimDuration::from_secs_f64(0.0015).as_micros(), 1500);
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_millis(10) + SimDuration::from_millis(5);
        assert_eq!(t.as_millis(), 15);
        assert_eq!((t - SimTime::from_millis(10)).as_millis(), 5);
        let mut u = SimTime::ZERO;
        u += SimDuration::from_micros(7);
        assert_eq!(u.as_micros(), 7);
    }

    #[test]
    #[should_panic(expected = "duration_since")]
    fn duration_since_panics_when_backwards() {
        let _ = SimTime::from_millis(1).duration_since(SimTime::from_millis(2));
    }

    #[test]
    fn saturating_duration() {
        let d = SimTime::from_millis(1).saturating_duration_since(SimTime::from_millis(2));
        assert_eq!(d, SimDuration::ZERO);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
        assert_eq!(SimDuration::from_millis(3).to_string(), "3.000ms");
        assert_eq!(SimDuration::from_micros(40).to_string(), "40µs");
        assert_eq!(SimTime::from_millis(1500).to_string(), "1.500000s");
    }

    #[test]
    fn duration_scaling() {
        assert_eq!((SimDuration::from_millis(4) / 2).as_millis(), 2);
        assert_eq!((SimDuration::from_millis(4) * 3).as_millis(), 12);
        assert_eq!(
            SimDuration::from_millis(4) - SimDuration::from_millis(6),
            SimDuration::ZERO
        );
    }

    proptest! {
        #[test]
        fn ordering_consistent_with_nanos(a in any::<u64>(), b in any::<u64>()) {
            let (ta, tb) = (SimTime::from_nanos(a), SimTime::from_nanos(b));
            prop_assert_eq!(ta.cmp(&tb), a.cmp(&b));
        }

        #[test]
        fn add_then_subtract_roundtrips(base in 0u64..1 << 60, d in 0u64..1 << 30) {
            let t = SimTime::from_nanos(base) + SimDuration::from_nanos(d);
            prop_assert_eq!(t.duration_since(SimTime::from_nanos(base)).as_nanos(), d);
        }
    }
}
