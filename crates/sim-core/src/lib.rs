//! Deterministic discrete-event simulation (DES) substrate.
//!
//! The paper's testbed is physical hardware: four hosts (edge node, RSU,
//! OBU, vehicle ECU) synchronised over NTP, a radio channel, a camera and a
//! moving vehicle. This crate replaces the physical clock and concurrency
//! with a deterministic event queue so that the *same code paths* (message
//! encoding, MAC access, polling loops, control laws) run in a controlled,
//! reproducible timeline:
//!
//! * [`SimTime`] / [`SimDuration`] — nanosecond-resolution simulated time,
//! * [`EventQueue`] / [`run`] — a classic min-heap event scheduler with a
//!   stable FIFO tie-break for events at the same instant,
//! * [`SimRng`] — a seedable, forkable random source (xoshiro256++), so
//!   every run is reproducible from a single `u64` seed,
//! * [`NodeClock`] — a per-host wall clock with NTP-style offset and drift,
//!   producing the millisecond-quantised timestamps the paper logs,
//! * [`Trace`] — an event trace with a stable digest, used by the
//!   determinism tests.
//!
//! # Example
//!
//! ```
//! use sim_core::{EventQueue, SimDuration, SimTime, run, EventHandler};
//!
//! struct Counter(u32);
//! impl EventHandler for Counter {
//!     type Event = &'static str;
//!     fn handle(&mut self, now: SimTime, _ev: &'static str,
//!               q: &mut EventQueue<&'static str>) {
//!         self.0 += 1;
//!         if self.0 < 3 {
//!             q.schedule_after(now, SimDuration::from_millis(10), "tick");
//!         }
//!     }
//! }
//!
//! let mut q = EventQueue::new();
//! q.schedule_at(SimTime::ZERO, "tick");
//! let mut c = Counter(0);
//! let end = run(&mut c, &mut q, SimTime::from_secs(1));
//! assert_eq!(c.0, 3);
//! assert_eq!(end, SimTime::from_millis(20));
//! ```

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

mod clock;
mod engine;
pub mod math;
mod rng;
mod time;
mod trace;

pub use clock::{NodeClock, NtpModel};
pub use engine::{run, run_batched, run_until_idle, EventHandler, EventQueue, ReferenceQueue};
pub use rng::{RngCore, SimRng};
pub use time::{SimDuration, SimTime};
pub use trace::{Trace, TraceEvent};

// The DES substrate runs inside worker threads of the parallel campaign
// runner (crates/runner): every building block of a simulation must be
// `Send` so a whole seeded run can execute on a worker and its results
// move back to the merging thread. Checked at compile time so a future
// `Rc`/`RefCell` regression fails here with a named type.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<SimTime>();
    assert_send::<SimDuration>();
    assert_send::<SimRng>();
    assert_send::<NodeClock>();
    assert_send::<Trace>();
    assert_send::<EventQueue<()>>();
};
