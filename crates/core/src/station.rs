//! Structure-of-arrays station state for city-scale fleets.
//!
//! The congestion and city experiments tick thousands of stations per
//! 100 ms. Keeping each station's hot state (position, heading, speed,
//! DCC probe window, transmit counters) in its own `ItsStation` object
//! scatters that state across the heap, so a per-tick pass chases one
//! pointer per station. [`StationArena`] stores each field in its own
//! contiguous `Vec` instead, so the kinematics pass, the channel-busy
//! accounting, and the DCC window roll each walk flat `f64`/`u64`
//! arrays in index order.
//!
//! The DCC ladder itself is the *same* state machine the per-station
//! [`phy80211p::dcc::DccGatekeeper`] runs: the arena calls the pure
//! [`phy80211p::dcc::step_state`] transition on every completed CBR
//! window (the gatekeeper's `update_state` is a thin wrapper over the
//! same function, pinned by a phy80211p unit test), so arena-driven
//! fleets and object-driven fleets throttle identically.
//!
//! Every accessor here is panic-free (checked `get`s, saturating
//! arithmetic) — the methods are listed in `detlint.toml`'s S3
//! panic-reachability roots.

use phy80211p::dcc::{step_state, DccState};
use phy80211p::Position2D;
use sim_core::{SimDuration, SimTime};

/// Contiguous per-station hot state, indexed by dense station index
/// (`0..len`, assigned by [`StationArena::push_station`] order — the
/// same indices a [`phy80211p::SpatialGrid`] hands out when stations
/// are inserted in the same order).
#[derive(Debug, Clone)]
pub struct StationArena {
    /// CBR probe window length (ETSI TS 102 687 uses 100 ms).
    probe_window: SimDuration,
    // --- kinematics ---
    xs: Vec<f64>,
    ys: Vec<f64>,
    headings_deg: Vec<f64>,
    speeds_mps: Vec<f64>,
    // --- DCC probe + ladder ---
    dcc_states: Vec<DccState>,
    busy_in_window_ns: Vec<u64>,
    window_start: Vec<SimTime>,
    last_cbr: Vec<f64>,
    last_tx: Vec<Option<SimTime>>,
    // --- counters ---
    tx_counts: Vec<u64>,
    rx_counts: Vec<u64>,
    // --- run-wide CBR statistics (sum over completed windows) ---
    cbr_sum: f64,
    cbr_windows: u64,
}

impl StationArena {
    /// An empty arena whose CBR probes use `probe_window` (100 ms in
    /// the ETSI DCC spec).
    pub fn new(probe_window: SimDuration) -> Self {
        Self {
            probe_window,
            xs: Vec::new(),
            ys: Vec::new(),
            headings_deg: Vec::new(),
            speeds_mps: Vec::new(),
            dcc_states: Vec::new(),
            busy_in_window_ns: Vec::new(),
            window_start: Vec::new(),
            last_cbr: Vec::new(),
            last_tx: Vec::new(),
            tx_counts: Vec::new(),
            rx_counts: Vec::new(),
            cbr_sum: 0.0,
            cbr_windows: 0,
        }
    }

    /// Appends a station; returns its dense index.
    pub fn push_station(&mut self, pos: Position2D, heading_deg: f64, speed_mps: f64) -> u32 {
        let idx = self.xs.len() as u32;
        self.xs.push(pos.x);
        self.ys.push(pos.y);
        self.headings_deg.push(heading_deg);
        self.speeds_mps.push(speed_mps);
        self.dcc_states.push(DccState::Relaxed);
        self.busy_in_window_ns.push(0);
        self.window_start.push(SimTime::ZERO);
        self.last_cbr.push(0.0);
        self.last_tx.push(None);
        self.tx_counts.push(0);
        self.rx_counts.push(0);
        idx
    }

    /// Number of stations.
    pub fn station_count(&self) -> usize {
        self.xs.len()
    }

    /// Whether the arena is empty.
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// Position of station `idx`, if it exists.
    pub fn position_of(&self, idx: u32) -> Option<Position2D> {
        let i = idx as usize;
        match (self.xs.get(i), self.ys.get(i)) {
            (Some(&x), Some(&y)) => Some(Position2D::new(x, y)),
            _ => None,
        }
    }

    /// All x coordinates, index order (contiguous kinematics reads).
    pub fn xs(&self) -> &[f64] {
        &self.xs
    }

    /// All y coordinates, index order.
    pub fn ys(&self) -> &[f64] {
        &self.ys
    }

    /// Mutable x coordinates for a contiguous kinematics pass.
    pub fn xs_mut(&mut self) -> &mut [f64] {
        &mut self.xs
    }

    /// Mutable y coordinates for a contiguous kinematics pass.
    pub fn ys_mut(&mut self) -> &mut [f64] {
        &mut self.ys
    }

    /// Both coordinate arrays at once (split borrow), for kinematics
    /// passes that write x and y in a single contiguous walk.
    pub fn coords_mut(&mut self) -> (&mut [f64], &mut [f64]) {
        (&mut self.xs, &mut self.ys)
    }

    /// Heading (degrees) per station, index order.
    pub fn headings_deg(&self) -> &[f64] {
        &self.headings_deg
    }

    /// Mutable headings for a contiguous kinematics pass.
    pub fn headings_deg_mut(&mut self) -> &mut [f64] {
        &mut self.headings_deg
    }

    /// Speed (m/s) per station, index order.
    pub fn speeds_mps(&self) -> &[f64] {
        &self.speeds_mps
    }

    /// Mutable speeds for a contiguous kinematics pass.
    pub fn speeds_mps_mut(&mut self) -> &mut [f64] {
        &mut self.speeds_mps
    }

    /// DCC ladder state of station `idx` (Relaxed for unknown indices,
    /// matching a station that never saw a busy channel).
    pub fn dcc_state_of(&self, idx: u32) -> DccState {
        self.dcc_states
            .get(idx as usize)
            .copied()
            .unwrap_or(DccState::Relaxed)
    }

    /// Most recently completed CBR window value for station `idx`.
    pub fn last_cbr_of(&self, idx: u32) -> f64 {
        self.last_cbr.get(idx as usize).copied().unwrap_or(0.0)
    }

    /// Adds observed channel-busy time to station `idx`'s current CBR
    /// probe window. Unknown indices are ignored.
    pub fn note_busy(&mut self, idx: u32, busy: SimDuration) {
        if let Some(acc) = self.busy_in_window_ns.get_mut(idx as usize) {
            *acc = acc.saturating_add(busy.as_nanos());
        }
    }

    /// Whether station `idx`'s DCC gate is open at `now` (its ladder
    /// state's `t_off` has elapsed since its last transmission).
    /// Unknown indices never gate open.
    pub fn gate_open(&self, idx: u32, now: SimTime) -> bool {
        let i = idx as usize;
        let (Some(last), Some(state)) = (self.last_tx.get(i), self.dcc_states.get(i)) else {
            return false;
        };
        match last {
            None => true,
            Some(t) => now.saturating_duration_since(*t) >= state.t_off(),
        }
    }

    /// Records a transmission by station `idx` at `now` (restarts its
    /// `t_off` clock, bumps its tx counter).
    pub fn record_tx(&mut self, idx: u32, now: SimTime) {
        let i = idx as usize;
        if let Some(slot) = self.last_tx.get_mut(i) {
            *slot = Some(now);
        }
        if let Some(c) = self.tx_counts.get_mut(i) {
            *c = c.saturating_add(1);
        }
    }

    /// Records a reception by station `idx`.
    pub fn record_rx(&mut self, idx: u32) {
        if let Some(c) = self.rx_counts.get_mut(idx as usize) {
            *c = c.saturating_add(1);
        }
    }

    /// Completes every CBR probe window that ends at or before `now`:
    /// for each station, each elapsed window yields one CBR sample that
    /// drives the pure DCC ladder step ([`step_state`]). Walks the
    /// busy/state/window arrays contiguously in index order.
    pub fn roll_windows(&mut self, now: SimTime) {
        let window = self.probe_window;
        if window.is_zero() {
            return;
        }
        let window_secs = window.as_secs_f64();
        for (((busy, start), state), cbr_out) in self
            .busy_in_window_ns
            .iter_mut()
            .zip(self.window_start.iter_mut())
            .zip(self.dcc_states.iter_mut())
            .zip(self.last_cbr.iter_mut())
        {
            while now.saturating_duration_since(*start) >= window {
                let cbr = (SimDuration::from_nanos(*busy).as_secs_f64() / window_secs).min(1.0);
                *state = step_state(*state, cbr);
                *cbr_out = cbr;
                *busy = 0;
                *start = *start + window;
                self.cbr_sum += cbr;
                self.cbr_windows += 1;
            }
        }
    }

    /// Total transmissions across the fleet.
    pub fn tx_total(&self) -> u64 {
        self.tx_counts
            .iter()
            .fold(0u64, |a, &c| a.saturating_add(c))
    }

    /// Total receptions across the fleet.
    pub fn rx_total(&self) -> u64 {
        self.rx_counts
            .iter()
            .fold(0u64, |a, &c| a.saturating_add(c))
    }

    /// Transmission count of station `idx` (0 for unknown indices).
    pub fn tx_count_of(&self, idx: u32) -> u64 {
        self.tx_counts.get(idx as usize).copied().unwrap_or(0)
    }

    /// Mean CBR over every completed probe window of every station.
    pub fn mean_cbr(&self) -> f64 {
        if self.cbr_windows == 0 {
            0.0
        } else {
            self.cbr_sum / self.cbr_windows as f64
        }
    }

    /// The most restrictive DCC state any station currently holds.
    pub fn worst_dcc_state(&self) -> DccState {
        self.dcc_states
            .iter()
            .copied()
            .fold(DccState::Relaxed, DccState::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phy80211p::dcc::DccGatekeeper;

    const WINDOW: SimDuration = SimDuration::from_millis(100);

    #[test]
    fn arena_ladder_matches_gatekeeper_over_a_busy_trace() {
        // Drive the arena's SoA ladder and a real DccGatekeeper with an
        // identical busy trace; their states must agree tick for tick.
        let mut arena = StationArena::new(WINDOW);
        let idx = arena.push_station(Position2D::default(), 0.0, 0.0);
        let mut dcc = DccGatekeeper::new();
        // Busy ramps up, holds, then fades: exercises up and down moves.
        let busy_ms = [2u64, 10, 30, 55, 70, 70, 70, 40, 20, 5, 0, 0, 0, 0];
        let mut now = SimTime::ZERO;
        for (k, &b) in busy_ms.iter().enumerate() {
            let busy = SimDuration::from_millis(b);
            arena.note_busy(idx, busy);
            dcc.observe_busy(now, busy);
            now = SimTime::from_millis(100 * (k as u64 + 1));
            arena.roll_windows(now);
            let gatekeeper_state = dcc.update_state(now);
            assert_eq!(arena.dcc_state_of(idx), gatekeeper_state, "window {k}");
        }
    }

    #[test]
    fn gate_respects_t_off() {
        let mut arena = StationArena::new(WINDOW);
        let idx = arena.push_station(Position2D::default(), 0.0, 0.0);
        assert!(
            arena.gate_open(idx, SimTime::ZERO),
            "fresh station gates open"
        );
        arena.record_tx(idx, SimTime::from_millis(100));
        // Relaxed t_off is 60 ms.
        assert!(!arena.gate_open(idx, SimTime::from_millis(130)));
        assert!(arena.gate_open(idx, SimTime::from_millis(160)));
        assert_eq!(arena.tx_count_of(idx), 1);
    }

    #[test]
    fn unknown_indices_are_inert() {
        let mut arena = StationArena::new(WINDOW);
        arena.note_busy(7, SimDuration::from_millis(50));
        arena.record_tx(7, SimTime::ZERO);
        arena.record_rx(7);
        assert!(!arena.gate_open(7, SimTime::from_secs(1)));
        assert_eq!(arena.position_of(7), None);
        assert_eq!(arena.tx_total(), 0);
        assert_eq!(arena.rx_total(), 0);
    }

    #[test]
    fn mean_cbr_averages_completed_windows() {
        let mut arena = StationArena::new(WINDOW);
        let a = arena.push_station(Position2D::default(), 0.0, 0.0);
        let b = arena.push_station(Position2D::new(10.0, 0.0), 0.0, 0.0);
        arena.note_busy(a, SimDuration::from_millis(40));
        arena.note_busy(b, SimDuration::from_millis(20));
        arena.roll_windows(SimTime::from_millis(100));
        assert!(
            (arena.mean_cbr() - 0.3).abs() < 1e-12,
            "{}",
            arena.mean_cbr()
        );
        assert!((arena.last_cbr_of(a) - 0.4).abs() < 1e-12);
        assert!((arena.last_cbr_of(b) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn kinematics_slices_are_contiguous_and_writable() {
        let mut arena = StationArena::new(WINDOW);
        for i in 0..8 {
            arena.push_station(Position2D::new(i as f64, 0.0), 90.0, 5.0);
        }
        for x in arena.xs_mut() {
            *x += 1.0;
        }
        assert_eq!(arena.position_of(3), Some(Position2D::new(4.0, 0.0)));
        assert_eq!(arena.xs().len(), 8);
        assert_eq!(arena.station_count(), 8);
    }
}
