//! Platoon extension (paper §V): "extend the testbed to support connected
//! platoons (i.e., more robotic vehicles that are following each other),
//! and evaluate the detection-to-action delay for the entire platoon."
//!
//! Also implements the multi-technology arrangement sketched there: "the
//! platoon leader is 5G-capable while intra-platoon message forwarding is
//! based on IEEE 802.11p".
//!
//! The platoon drives in single file toward the hazard; the RSU emits
//! one DENM. Per vehicle we compute the DENM arrival (directly over the
//! GeoBroadcast, or leader-first + hop-by-hop forwarding), the polling
//! pickup, the actuation instant, and the resulting stop profile; the
//! whole-platoon detection-to-action delay is the worst vehicle's, and
//! the minimum inter-vehicle gap tells whether the platoon stayed safe.

use faults::{FaultInjector, FaultNode, FaultPlan, FaultStats};
use openc2x::node::PollingModel;
use phy80211p::cellular::{CellularLink, CellularProfile};
use phy80211p::channel::{Channel, ChannelConfig};
use phy80211p::edca::{AccessCategory, EdcaMac, Medium};
use phy80211p::ofdm::{airtime, DataRate};
use phy80211p::Position2D;
use sim_core::{SimDuration, SimRng, SimTime};
use vehicle::dynamics::{LongitudinalModel, VehicleParams};
use vehicle::watchdog::{DegradationLevel, V2xWatchdog, WatchdogConfig};

/// How the DENM reaches the platoon.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PlatoonLink {
    /// Every vehicle receives the RSU's GeoBroadcast directly.
    DirectGbc,
    /// Only the leader receives (over a cellular link); each vehicle
    /// forwards to its follower over 802.11p.
    LeaderCellularRelay(CellularProfile),
}

/// Platoon experiment configuration.
#[derive(Debug, Clone)]
pub struct PlatoonConfig {
    /// RNG seed.
    pub seed: u64,
    /// Number of vehicles (leader + followers).
    pub n_vehicles: usize,
    /// Bumper-to-bumper gap at cruise, m.
    pub gap_m: f64,
    /// Cruise speed, m/s.
    pub speed_mps: f64,
    /// Leader's distance from the RSU at DENM send, m.
    pub leader_distance_m: f64,
    /// DENM delivery arrangement.
    pub link: PlatoonLink,
    /// Vehicle-side polling model (every vehicle polls its own OBU).
    pub polling: PollingModel,
    /// Wireless channel.
    pub channel: ChannelConfig,
    /// DENM frame size on the air, bytes.
    pub frame_bytes: usize,
    /// Data rate for 802.11p transmissions.
    pub data_rate: DataRate,
    /// Per-hop forwarding processing delay (decode + re-encode), s.
    pub forward_processing_s: f64,
    /// Vehicle dynamics.
    pub vehicle: VehicleParams,
    /// Emergency-braking-as-fail-safe variant: the leader brakes
    /// immediately on its own sensors (at the RSU send instant), while
    /// the followers still depend on the (relayed) DENM — the classic
    /// platoon emergency-brake hazard where late delivery closes gaps.
    pub leader_brakes_on_detection: bool,
    /// Fault schedule threaded through the run. The empty plan is a
    /// strict no-op: no injector method draws, so every legacy RNG
    /// stream — and therefore the whole record — stays byte-identical.
    pub fault_plan: FaultPlan,
    /// Per-follower V2V heartbeat watchdog. `Some` enables the leader's
    /// CAM heartbeat, its hop-by-hop relay down the string, and the
    /// fail-safe degradation cascade (DESIGN.md §15); `None` keeps the
    /// legacy open-loop stop profiles untouched.
    pub watchdog: Option<WatchdogConfig>,
}

impl Default for PlatoonConfig {
    fn default() -> Self {
        Self {
            seed: 1,
            n_vehicles: 4,
            gap_m: 1.2,
            speed_mps: 1.5,
            leader_distance_m: 3.0,
            link: PlatoonLink::DirectGbc,
            polling: PollingModel::default(),
            channel: ChannelConfig::default(),
            frame_bytes: 110,
            data_rate: DataRate::Mbps6,
            forward_processing_s: 0.004,
            vehicle: VehicleParams::default(),
            leader_brakes_on_detection: false,
            fault_plan: FaultPlan::default(),
            watchdog: None,
        }
    }
}

/// Result of one platoon run.
#[derive(Debug, Clone, PartialEq)]
pub struct PlatoonRecord {
    /// Per-vehicle DENM arrival time after the RSU send, ms.
    pub denm_rx_ms: Vec<f64>,
    /// Per-vehicle detection-to-action (RSU send → power cut), ms.
    pub action_ms: Vec<f64>,
    /// Per-vehicle stopping distance from actuation, m.
    pub braking_m: Vec<f64>,
    /// Minimum bumper gap between consecutive vehicles while stopping, m.
    pub min_gap_m: f64,
    /// Whole-platoon detection-to-action delay (worst vehicle), ms.
    pub platoon_action_ms: f64,
    /// Vehicles that never received the DENM.
    pub undelivered: usize,
    /// Followers that left nominal driving under the heartbeat-relay
    /// degradation cascade (0 when the watchdog is off).
    pub cascade_depth: usize,
    /// Followers that latched the watchdog's controlled stop.
    pub failsafe_stops: usize,
    /// Relayed leader heartbeats delivered across all followers.
    pub heartbeats_delivered: u64,
    /// Fault-plane counters (injections plus watchdog trips).
    pub fault: FaultStats,
}

impl PlatoonRecord {
    /// Whether every vehicle received and acted on the DENM.
    pub fn all_acted(&self) -> bool {
        self.undelivered == 0
    }

    /// Whether any two vehicles closed to a zero gap (collision).
    pub fn collision(&self) -> bool {
        self.min_gap_m <= 0.0
    }
}

/// Runs the platoon experiment.
///
/// # Panics
///
/// Panics if `n_vehicles` is zero.
pub fn run_platoon(config: &PlatoonConfig) -> PlatoonRecord {
    assert!(config.n_vehicles > 0, "platoon needs at least one vehicle");
    let mut rng = SimRng::seed_from(config.seed);
    // Forking is draw-free on the parent, so carving out the fault
    // stream and one stream per platoon member leaves every legacy draw
    // below byte-identical — the empty-plan no-op invariant.
    let mut injector = FaultInjector::new(config.fault_plan.clone(), rng.fork("faults"));
    let member_root = rng.fork("member-faults");
    let mut member_injectors: Vec<FaultInjector> = (0..config.n_vehicles)
        .map(|i| FaultInjector::new(config.fault_plan.clone(), member_root.fork_u64(i as u64)))
        .collect();
    let channel = Channel::new(config.channel.clone());
    let mac = EdcaMac::new();
    let mut medium = Medium::new();
    let rsu_pos = Position2D::new(0.0, 1.0);

    // Vehicle i cruises at x = leader_distance + i·(gap + length).
    let spacing = config.gap_m + config.vehicle.length_m;
    let positions: Vec<Position2D> = (0..config.n_vehicles)
        .map(|i| Position2D::new(config.leader_distance_m + i as f64 * spacing, 0.0))
        .collect();

    // Phase of each vehicle's polling loop.
    let phases: Vec<SimDuration> = (0..config.n_vehicles)
        .map(|_| SimDuration::from_secs_f64(rng.f64() * config.polling.period.as_secs_f64()))
        .collect();

    // --- DENM propagation: arrival time per vehicle (None = lost). ---
    let send = SimTime::from_millis(10);
    let mut arrivals: Vec<Option<SimTime>> = vec![None; config.n_vehicles];
    match config.link {
        PlatoonLink::DirectGbc => {
            let start = mac.access_time(send, AccessCategory::Voice, &medium, &mut rng);
            let at = airtime(config.frame_bytes, config.data_rate);
            medium.occupy(start + at);
            for (i, pos) in positions.iter().enumerate() {
                // Fault plane: the medium loses this receiver's copy
                // (radio silence / stuck RSU transmitter) or the
                // receiving member is crashed. Plans targeting member i
                // draw only from member i's forked stream.
                if injector.radio_drop(start, FaultNode::Rsu)
                    || member_injectors[i].node_down(start, FaultNode::Platoon(i as u8))
                {
                    continue;
                }
                let out = channel.transmit(
                    start,
                    rsu_pos,
                    *pos,
                    config.frame_bytes,
                    config.data_rate,
                    &mut rng,
                );
                if out.delivered {
                    arrivals[i] = Some(out.arrival);
                }
            }
        }
        PlatoonLink::LeaderCellularRelay(profile) => {
            let link = CellularLink::new(profile);
            // Fault plane: the cellular downlink counts as an RSU-side
            // transmission; a crashed leader cannot receive it.
            let leg_lost = injector.radio_drop(send, FaultNode::Rsu)
                || member_injectors[0].node_down(send, FaultNode::Platoon(0));
            let out = link.send(send, &mut rng);
            if out.delivered && !leg_lost {
                arrivals[0] = Some(out.arrival);
                // Hop-by-hop forward i → i+1 over 802.11p, using the real
                // GeoNetworking GBC forwarding rules (hop-limit decrement
                // + area containment) on an actual packet.
                let area_centre = openc2x::node::lab_to_geo(
                    (41.178, -8.608),
                    Position2D::new(
                        config.leader_distance_m + spacing * (config.n_vehicles as f64) / 2.0,
                        0.0,
                    ),
                );
                let source = geonet::LongPositionVector::new(
                    geonet::GnAddress::new(15),
                    send.as_millis(),
                    41.178,
                    -8.608,
                    0.0,
                    0.0,
                );
                let area = geonet::GeoArea::circle(area_centre.0, area_centre.1, 100.0);
                let mut packet = geonet::GnPacket::geo_broadcast(
                    source,
                    1,
                    area,
                    geonet::headers::TrafficClass::dp0(),
                    geonet::btp::BtpPort::DENM,
                    vec![0u8; config.frame_bytes.saturating_sub(60)],
                );
                let mut t = out.arrival;
                for i in 1..config.n_vehicles {
                    let (lat, lon) = openc2x::node::lab_to_geo((41.178, -8.608), positions[i - 1]);
                    match geonet::forwarding::gbc_forward_decision(&packet, lat, lon) {
                        geonet::forwarding::ForwardDecision::Rebroadcast(next) => {
                            packet = next;
                        }
                        geonet::forwarding::ForwardDecision::Discard(_) => break,
                    }
                    t += SimDuration::from_secs_f64(config.forward_processing_s);
                    // Fault plane: hop i−1 → i dies when the forwarding
                    // member's transmitter is silenced or the receiving
                    // member is crashed; the rest of the chain starves.
                    if member_injectors[i - 1].radio_drop(t, FaultNode::Platoon((i - 1) as u8))
                        || member_injectors[i].node_down(t, FaultNode::Platoon(i as u8))
                    {
                        break;
                    }
                    let start = mac.access_time(t, AccessCategory::Voice, &medium, &mut rng);
                    let at = airtime(config.frame_bytes, config.data_rate);
                    medium.occupy(start + at);
                    let hop = channel.transmit(
                        start,
                        positions[i - 1],
                        positions[i],
                        config.frame_bytes,
                        config.data_rate,
                        &mut rng,
                    );
                    if !hop.delivered {
                        break; // chain broken: rest of platoon unreached
                    }
                    arrivals[i] = Some(hop.arrival);
                    t = hop.arrival;
                }
            }
        }
    }

    // --- Per-vehicle pickup + actuation. ---
    let mut action_times: Vec<Option<SimTime>> = vec![None; config.n_vehicles];
    for i in 0..config.n_vehicles {
        if i == 0 && config.leader_brakes_on_detection {
            // The leader's own sensors see the hazard: it cuts power at
            // the send instant, no network in the loop.
            action_times[0] = Some(send);
            continue;
        }
        if let Some(arrival) = arrivals[i] {
            let poll = config.polling.next_poll(arrival, phases[i]);
            let rtt = config.polling.sample_http_rtt(&mut rng);
            // Fault plane: a stalled ECU poll misses this cycle and
            // picks the DENM up one period later.
            let stall = if member_injectors[i].http_stall(poll) {
                config.polling.period
            } else {
                SimDuration::ZERO
            };
            action_times[i] = Some(poll + stall + rtt);
        }
    }

    // --- V2V heartbeat relay + fail-safe degradation cascade. ---
    //
    // With the watchdog enabled, the leader originates a CAM heartbeat
    // every `heartbeat_period` and each member relays it to its
    // follower, so silencing one transmitter starves every watchdog
    // downstream — the cascading failure this scenario exists to show.
    let horizon = SimTime::from_millis(2 * 30_000);
    let mut dogs: Vec<V2xWatchdog> = Vec::new();
    let mut hb_times: Vec<Vec<SimTime>> = vec![Vec::new(); config.n_vehicles];
    let mut heartbeats_delivered = 0u64;
    if let Some(wcfg) = config.watchdog {
        dogs = (0..config.n_vehicles)
            .map(|_| V2xWatchdog::new(wcfg))
            .collect();
        let mut t = SimTime::ZERO + wcfg.heartbeat_period;
        while t <= horizon {
            let mut reached = true;
            for k in 1..config.n_vehicles {
                if !reached {
                    break; // nothing left to relay downstream
                }
                let tx = k - 1;
                let lost = member_injectors[tx].radio_drop(t, FaultNode::Platoon(tx as u8))
                    || member_injectors[k].node_down(t, FaultNode::Platoon(k as u8));
                if lost {
                    reached = false;
                } else {
                    hb_times[k].push(t);
                    heartbeats_delivered += 1;
                }
            }
            t += wcfg.heartbeat_period;
        }
    }

    // --- Stop profiles and minimum gaps. ---
    let mut braking = Vec::with_capacity(config.n_vehicles);
    let mut stop_profiles: Vec<Vec<(f64, f64)>> = Vec::with_capacity(config.n_vehicles);
    let mut latched_stops = 0usize;
    for (i, action_time) in action_times.iter().take(config.n_vehicles).enumerate() {
        let mut car = LongitudinalModel::new(config.vehicle);
        car.set_speed(config.speed_mps);
        // Position along the travel direction (vehicles drive in −x).
        let cut_at = action_time.map(|t| t.as_secs_f64());
        let mut profile = Vec::new();
        let dt = 0.002;
        let mut t = 0.0;
        let mut travelled = 0.0;
        let mut brake_start_odo = None;
        // Cascade state (watchdog enabled, followers only): the next
        // relayed heartbeat to feed, and whether a controlled stop has
        // latched (a stopped member stays stopped even on recovery).
        let mut hb_next = 0usize;
        let mut latched_stop = false;
        let scale = config
            .watchdog
            .map(|w| w.failsafe_throttle_scale)
            .unwrap_or(1.0);
        for step in 0..30_000u64 {
            let throttle = match cut_at {
                Some(cut) if t >= cut => {
                    if brake_start_odo.is_none() {
                        brake_start_odo = Some(car.distance_m());
                    }
                    0.0
                }
                // Hold speed with the throttle that balances resistance.
                _ => 0.214,
            };
            // Degradation ladder: when the watchdog is off `dogs` is
            // empty and this branch never runs, so the legacy float
            // sequence is untouched.
            let throttle = match dogs.get_mut(i).filter(|_| i > 0) {
                None => throttle,
                Some(dog) => {
                    let now = SimTime::from_millis(step * 2);
                    while hb_times[i].get(hb_next).is_some_and(|hb| *hb <= now) {
                        dog.heartbeat(hb_times[i][hb_next]);
                        hb_next += 1;
                    }
                    match dog.assess(now) {
                        _ if latched_stop => 0.0,
                        DegradationLevel::Nominal => throttle,
                        DegradationLevel::SpeedCap => throttle * scale,
                        DegradationLevel::ControlledStop => {
                            latched_stop = true;
                            0.0
                        }
                    }
                }
            };
            travelled = car.distance_m();
            profile.push((t, travelled));
            if cut_at.is_some_and(|c| t > c) && car.speed_mps() <= 0.0 {
                break;
            }
            car.step(dt, throttle);
            t += dt;
        }
        let _ = travelled;
        if latched_stop {
            latched_stops += 1;
        }
        braking.push(match brake_start_odo {
            Some(start) => car.distance_m() - start,
            None => f64::NAN,
        });
        stop_profiles.push(profile);
    }

    // Minimum gap between consecutive vehicles: vehicle i+1 starts
    // `spacing` behind i and both travel forward; gap(t) = spacing −
    // (travel_{i+1}(t) − travel_i(t)).
    let mut min_gap = f64::INFINITY;
    if config.n_vehicles > 1 {
        let steps = stop_profiles.iter().map(Vec::len).min().unwrap_or(0);
        for pair in stop_profiles.windows(2) {
            for (front, rear) in pair[0].iter().zip(&pair[1]).take(steps) {
                let gap = config.gap_m - (rear.1 - front.1);
                min_gap = min_gap.min(gap);
            }
        }
        // After the shortest profile ends, positions are final; compare
        // final travel too.
        for i in 0..config.n_vehicles - 1 {
            let fa = stop_profiles[i].last().map(|p| p.1).unwrap_or(0.0);
            let fb = stop_profiles[i + 1].last().map(|p| p.1).unwrap_or(0.0);
            min_gap = min_gap.min(config.gap_m - (fb - fa));
        }
    }

    let denm_rx_ms: Vec<f64> = arrivals
        .iter()
        .map(|a| {
            a.map(|t| (t.as_nanos() as f64 - send.as_nanos() as f64) / 1e6)
                .unwrap_or(f64::NAN)
        })
        .collect();
    let action_ms: Vec<f64> = action_times
        .iter()
        .map(|a| {
            a.map(|t| (t.as_nanos() as f64 - send.as_nanos() as f64) / 1e6)
                .unwrap_or(f64::NAN)
        })
        .collect();
    let undelivered = arrivals.iter().filter(|a| a.is_none()).count();
    let platoon_action_ms = action_ms
        .iter()
        .copied()
        .filter(|x| !x.is_nan())
        .fold(0.0f64, f64::max);

    // Cascade depth: how many followers the heartbeat starvation pushed
    // out of nominal driving (the leader's dog is never consulted, so
    // only indices 1.. can trip).
    let mut cascade_depth = 0usize;
    let mut fault = injector.stats();
    for inj in &member_injectors {
        fault.absorb(&inj.stats());
    }
    for dog in dogs.iter().skip(1) {
        let trips = dog.trips();
        if trips.speed_caps + trips.stops > 0 {
            cascade_depth += 1;
        }
        fault.watchdog_speed_caps += trips.speed_caps;
        fault.watchdog_stops += trips.stops;
        fault.watchdog_recoveries += trips.recoveries;
    }
    fault.failsafe_stop |= latched_stops > 0;

    PlatoonRecord {
        denm_rx_ms,
        action_ms,
        braking_m: braking,
        min_gap_m: min_gap,
        platoon_action_ms,
        undelivered,
        cascade_depth,
        failsafe_stops: latched_stops,
        heartbeats_delivered,
        fault,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direct_gbc_reaches_all_vehicles() {
        let record = run_platoon(&PlatoonConfig::default());
        assert!(record.all_acted(), "undelivered: {}", record.undelivered);
        assert_eq!(record.denm_rx_ms.len(), 4);
        for rx in &record.denm_rx_ms {
            assert!(*rx < 5.0, "direct delivery is sub-5 ms: {rx}");
        }
    }

    #[test]
    fn platoon_action_delay_bounded_by_polling() {
        let record = run_platoon(&PlatoonConfig::default());
        // Worst vehicle: direct rx (<2 ms) + up to one poll period (50)
        // + HTTP RTT.
        assert!(
            record.platoon_action_ms < 65.0,
            "{}",
            record.platoon_action_ms
        );
        assert!(record.platoon_action_ms > 1.0);
    }

    #[test]
    fn relay_chain_adds_per_hop_delay() {
        let mut cfg = PlatoonConfig {
            link: PlatoonLink::LeaderCellularRelay(CellularProfile::nsa_5g()),
            ..PlatoonConfig::default()
        };
        cfg.seed = 7;
        let record = run_platoon(&cfg);
        assert!(record.all_acted());
        // Arrival times strictly increase along the chain.
        for w in record.denm_rx_ms.windows(2) {
            assert!(w[1] > w[0], "relay ordering: {:?}", record.denm_rx_ms);
        }
        // Leader's arrival includes the cellular floor (≥ 8 ms).
        assert!(record.denm_rx_ms[0] >= 8.0);
    }

    #[test]
    fn comfortable_gap_avoids_collision() {
        let record = run_platoon(&PlatoonConfig {
            gap_m: 1.2,
            ..PlatoonConfig::default()
        });
        assert!(!record.collision(), "min gap {}", record.min_gap_m);
        assert!(record.min_gap_m > 0.5);
    }

    #[test]
    fn tight_gap_with_slow_relay_shrinks_margin() {
        let roomy = run_platoon(&PlatoonConfig {
            seed: 3,
            ..PlatoonConfig::default()
        });
        let tight = run_platoon(&PlatoonConfig {
            seed: 3,
            gap_m: 0.3,
            link: PlatoonLink::LeaderCellularRelay(CellularProfile::lte_uu()),
            ..PlatoonConfig::default()
        });
        assert!(tight.min_gap_m < roomy.min_gap_m);
    }

    #[test]
    fn braking_distances_match_single_vehicle_band() {
        let record = run_platoon(&PlatoonConfig::default());
        for b in &record.braking_m {
            assert!((0.2..=0.4).contains(b), "braking {b}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = run_platoon(&PlatoonConfig::default());
        let b = run_platoon(&PlatoonConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn leader_emergency_brake_closes_gaps() {
        // Fail-safe variant: the leader stops on its own sensors while
        // followers wait for the relayed DENM — gaps close by the
        // notification delay × speed.
        let passive = run_platoon(&PlatoonConfig {
            seed: 21,
            gap_m: 0.5,
            ..PlatoonConfig::default()
        });
        let emergency = run_platoon(&PlatoonConfig {
            seed: 21,
            gap_m: 0.5,
            leader_brakes_on_detection: true,
            link: PlatoonLink::LeaderCellularRelay(CellularProfile::lte_uu()),
            ..PlatoonConfig::default()
        });
        assert!(
            emergency.min_gap_m < passive.min_gap_m,
            "{} vs {}",
            emergency.min_gap_m,
            passive.min_gap_m
        );
        // The leader acts immediately.
        assert!(emergency.action_ms[0] <= 0.01, "{:?}", emergency.action_ms);
    }

    #[test]
    fn tight_gap_plus_slow_relay_collides() {
        let crash = run_platoon(&PlatoonConfig {
            seed: 22,
            gap_m: 0.08,
            leader_brakes_on_detection: true,
            link: PlatoonLink::LeaderCellularRelay(CellularProfile::lte_uu()),
            ..PlatoonConfig::default()
        });
        assert!(crash.collision(), "min gap {}", crash.min_gap_m);
    }

    #[test]
    #[should_panic(expected = "at least one vehicle")]
    fn empty_platoon_panics() {
        let _ = run_platoon(&PlatoonConfig {
            n_vehicles: 0,
            ..PlatoonConfig::default()
        });
    }
}
