//! The ETSI ITS Collision Avoidance scenario (paper Figures 3, 4 and 8).
//!
//! One run reproduces the experiment of §IV: the vehicle line-follows
//! toward the road-side camera; when it crosses the Action Point the
//! edge node's YOLO pipeline detects it, the Hazard Advertisement Service
//! POSTs `trigger_denm` to the RSU, the RSU broadcasts a DENM over
//! 802.11p, the OBU receives it, the vehicle's polling script picks it up
//! on `request_denm`, and the control logic cuts power to the wheels.
//!
//! Timestamps are collected at the paper's six steps:
//!
//! 1. vehicle reaches the Action Point (ground truth),
//! 2. YOLO outputs the identification (edge-node wall clock),
//! 3. the RSU sends the DENM (RSU wall clock),
//! 4. the OBU receives the DENM (OBU wall clock),
//! 5. the power-cut command is issued to the actuators (ECU wall clock),
//! 6. the vehicle comes to a halt (ground truth).
//!
//! Each of the four hosts has its own NTP-disciplined clock with
//! millisecond log resolution, so the per-step intervals include the same
//! measurement noise as the paper's Table II.

use facilities::ldm::PerceivedObject;
use faults::{CoopStats, FaultInjector, FaultNode, FaultPlan, FaultStats};
use its_messages::common::{ReferencePosition, StationId};
use openc2x::http::{poll_with_retry, RetryPolicy};
use openc2x::node::{lab_to_geo, FrameOutcome, ItsStation, PollingModel, StationConfig};
use perception::camera::{GroundTruthTarget, RoadSideCamera, TargetAppearance};
use perception::detector::{Detection, YoloModel};
use perception::hazard::{HazardAdvertisementService, HazardConfig, HazardDecision};
use perception::tracker::{Tracker, TrackerConfig};
use phy80211p::cellular::{CellularLink, CellularProfile};
use phy80211p::channel::{Channel, ChannelConfig, LinkCache};
use phy80211p::edca::Medium;
use phy80211p::ofdm::airtime;
use phy80211p::Position2D;
use sim_core::{
    run_batched, EventHandler, EventQueue, NodeClock, NtpModel, SimDuration, SimRng, SimTime, Trace,
};
use vehicle::actuators::TeensyLink;
use vehicle::dynamics::{BicycleState, LongitudinalModel, VehicleParams};
use vehicle::linefollow::{LineFollower, Track};
use vehicle::planner::{MotionPlanner, StopPolicy};
use vehicle::sensors::WheelOdometry;
use vehicle::watchdog::{DegradationLevel, V2xWatchdog, WatchdogConfig};

/// How the hazard service decides to trigger the DENM.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum HazardRule {
    /// The paper's rule: estimated distance at/below the Action Point.
    ActionPoint,
    /// Track-based rule: confirmed track closing with TTC below the
    /// threshold (uses the perception tracker's motion vector).
    TimeToCollision {
        /// TTC threshold, seconds.
        ttc_s: f64,
        /// Minimum detections before a track is acted on.
        min_hits: u32,
    },
}

/// How the DENM travels from RSU to OBU.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DenmLink {
    /// Direct IEEE 802.11p broadcast (the paper's setup).
    Its80211p,
    /// Via a cellular network (the paper's §V future-work comparison).
    Cellular(CellularProfile),
}

/// Full configuration of one collision-avoidance run.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// RNG seed; every stochastic component derives from it.
    pub seed: u64,
    /// Vehicle start distance from the camera along the approach, m.
    pub start_distance_m: f64,
    /// Initial vehicle speed (the run starts mid-cruise), m/s.
    pub cruise_speed_mps: f64,
    /// Throttle holding the cruise speed.
    pub cruise_throttle: f64,
    /// Action Point distance from the camera, m (paper: 1.52 m).
    pub action_point_m: f64,
    /// Road-side camera model.
    pub camera: RoadSideCamera,
    /// Object-detector model.
    pub yolo: YoloModel,
    /// Mean YOLO inference latency (capture → output), s.
    pub inference_mean_s: f64,
    /// Std-dev of inference latency, s.
    pub inference_std_s: f64,
    /// Appearance of the vehicle for the detector.
    pub appearance: TargetAppearance,
    /// Fixed part of the edge→RSU `trigger_denm` HTTP POST latency.
    pub trigger_http_base: SimDuration,
    /// Mean of the exponential jitter on that POST.
    pub trigger_http_jitter_mean: SimDuration,
    /// Mean DENM build/encode time at the RSU, s.
    pub denm_build_mean_s: f64,
    /// DENM repetition: `(interval, duration)`. The paper's application
    /// sends one shot (`None`); repetition makes the warning robust to
    /// frame loss on obstructed channels.
    pub denm_repetition: Option<(SimDuration, SimDuration)>,
    /// Vehicle-side polling of the OBU HTTP API.
    pub polling: PollingModel,
    /// Jetson→Teensy→ESC actuation path.
    pub teensy: TeensyLink,
    /// Wireless channel configuration.
    pub channel: ChannelConfig,
    /// RSU antenna position in the lab frame, m.
    pub rsu_position: Position2D,
    /// NTP synchronisation quality across the four hosts.
    pub ntp: NtpModel,
    /// Vehicle control-loop period.
    pub control_period: SimDuration,
    /// Vehicle dynamics parameters.
    pub vehicle: VehicleParams,
    /// DENM stop policy at the vehicle.
    pub stop_policy: StopPolicy,
    /// Hazard trigger rule at the edge node.
    pub hazard_rule: HazardRule,
    /// RSU→OBU link for DENMs.
    pub denm_link: DenmLink,
    /// Give-up horizon for a run.
    pub timeout: SimDuration,
    /// Fault schedule for the run. The default (empty) plan is a strict
    /// no-op: the injector draws no randomness and changes no control
    /// flow, so faultless runs stay byte-identical to the baseline.
    pub fault_plan: FaultPlan,
    /// V2X heartbeat watchdog at the vehicle. `Some` makes the RSU
    /// beacon CAMs at the watchdog's heartbeat period and the planner
    /// honour the degradation ladder; `None` (the default) leaves the
    /// baseline event schedule untouched.
    pub watchdog: Option<WatchdogConfig>,
    /// Bounded retry/backoff for the vehicle's OBU poll. Only consulted
    /// when a poll attempt stalls, so it cannot perturb healthy runs.
    pub poll_retry: RetryPolicy,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        Self {
            seed: 1,
            start_distance_m: 4.0,
            cruise_speed_mps: 1.5,
            cruise_throttle: 0.214,
            action_point_m: 1.52,
            camera: RoadSideCamera::default(),
            yolo: YoloModel::default(),
            inference_mean_s: 0.180,
            inference_std_s: 0.020,
            appearance: TargetAppearance::WithStopSign,
            trigger_http_base: SimDuration::from_millis(12),
            trigger_http_jitter_mean: SimDuration::from_millis(9),
            denm_build_mean_s: 0.002,
            denm_repetition: None,
            polling: PollingModel::default(),
            teensy: TeensyLink::default(),
            channel: ChannelConfig::default(),
            rsu_position: Position2D::new(0.0, 1.0),
            ntp: NtpModel::default(),
            control_period: SimDuration::from_millis(20),
            vehicle: VehicleParams::default(),
            stop_policy: StopPolicy::AnyDenm,
            hazard_rule: HazardRule::ActionPoint,
            denm_link: DenmLink::Its80211p,
            timeout: SimDuration::from_secs(30),
            fault_plan: FaultPlan::default(),
            watchdog: None,
            poll_retry: RetryPolicy::default(),
        }
    }
}

/// The geographic anchor of the laboratory origin.
const GEO_ORIGIN: (f64, f64) = (41.178, -8.608);

/// Result of one run: the six step timestamps plus derived quantities.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunRecord {
    /// Step 1 — true Action Point crossing (simulation time).
    pub step1_crossing: Option<SimTime>,
    /// Step 2 — YOLO detection output (simulation time).
    pub step2_detection: Option<SimTime>,
    /// Step 2 wall-clock timestamp (edge node), ms.
    pub step2_wall_ms: Option<u64>,
    /// Step 3 — RSU hands the DENM to the MAC (simulation time).
    pub step3_rsu_send: Option<SimTime>,
    /// Step 3 wall-clock timestamp (RSU), ms.
    pub step3_wall_ms: Option<u64>,
    /// Step 4 — OBU registers DENM reception (simulation time).
    pub step4_obu_recv: Option<SimTime>,
    /// Step 4 wall-clock timestamp (OBU), ms.
    pub step4_wall_ms: Option<u64>,
    /// Step 5 — power-cut command issued (simulation time).
    pub step5_actuation: Option<SimTime>,
    /// Step 5 wall-clock timestamp (vehicle ECU), ms.
    pub step5_wall_ms: Option<u64>,
    /// Step 6 — vehicle at a standstill (simulation time).
    pub step6_halt: Option<SimTime>,
    /// Odometer reading at step 2, m.
    pub odometer_at_detection_m: Option<f64>,
    /// Odometer reading at halt, m.
    pub odometer_at_halt_m: Option<f64>,
    /// Speed when the detection fired, m/s.
    pub speed_at_detection_mps: f64,
    /// Distance between the halted vehicle and the camera, m — the
    /// safety margin left after the whole chain acted.
    pub halt_distance_to_camera_m: Option<f64>,
    /// Estimated distance reported by the triggering detection, m.
    pub detection_distance_m: Option<f64>,
    /// Whether the DENM made it to the OBU.
    pub denm_delivered: bool,
    /// Number of CAMs the RSU received during the run.
    pub cams_received: u64,
    /// Discrete events dispatched over the whole run — performance
    /// accounting for the campaign-throughput bench (`BENCH_campaign.json`
    /// reports ns/event from it); not part of any paper table.
    pub events_dispatched: u64,
    /// Fault-injection and degradation counters (all zero on a
    /// faultless run; wire version 2 appends them to the frame).
    pub fault: FaultStats,
    /// Cooperative-scenario outcome counters (wire version 3 appends
    /// them; the single-vehicle DES only ever fills `failsafe_stops`).
    pub coop: CoopStats,
    /// Event trace of the run.
    pub trace: Trace,
}

impl RunRecord {
    fn wall_diff(later: Option<u64>, earlier: Option<u64>) -> Option<i64> {
        Some(later? as i64 - earlier? as i64)
    }

    /// Table II row 1: detection → RSU send, ms (wall clocks).
    pub fn interval_2_3_ms(&self) -> Option<i64> {
        Self::wall_diff(self.step3_wall_ms, self.step2_wall_ms)
    }

    /// Table II row 2: RSU send → OBU receive, ms (wall clocks).
    pub fn interval_3_4_ms(&self) -> Option<i64> {
        Self::wall_diff(self.step4_wall_ms, self.step3_wall_ms)
    }

    /// Table II row 3: OBU receive → actuator command, ms (wall clocks).
    pub fn interval_4_5_ms(&self) -> Option<i64> {
        Self::wall_diff(self.step5_wall_ms, self.step4_wall_ms)
    }

    /// Table II bottom row: total delay step 2 → step 5, ms.
    pub fn total_delay_ms(&self) -> Option<i64> {
        Self::wall_diff(self.step5_wall_ms, self.step2_wall_ms)
    }

    /// Table III: distance travelled from detection to halt, m.
    pub fn braking_distance_m(&self) -> Option<f64> {
        Some(self.odometer_at_halt_m? - self.odometer_at_detection_m?)
    }

    /// Figure 10: detection-to-stop period (simulation truth).
    pub fn detection_to_stop(&self) -> Option<SimDuration> {
        Some(
            self.step6_halt?
                .saturating_duration_since(self.step2_detection?),
        )
    }

    /// Whether the emergency pipeline completed end to end.
    pub fn completed(&self) -> bool {
        self.step6_halt.is_some() && self.step5_actuation.is_some()
    }
}

// The parallel campaign runner shares the base `ScenarioConfig` across
// worker threads and moves each `RunRecord` back to the index-ordered
// merge; pin those auto-trait bounds here so a future non-thread-safe
// field fails at this definition, not at a distant runner call site.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ScenarioConfig>();
    assert_send_sync::<RunRecord>();
};

/// Discrete events of the scenario (public because [`Scenario`]
/// implements [`EventHandler`]; not constructible by users — runs are
/// driven through [`Scenario::run`]).
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum Event {
    /// Vehicle control loop: physics, line following, CAM polling.
    ControlTick,
    /// Camera frame capture instant.
    CameraFrame,
    /// YOLO output for a captured frame.
    DetectionOutput(Detection),
    /// The `trigger_denm` POST arrives at the RSU.
    TriggerArrives,
    /// The encoded DENM is handed to the RSU MAC.
    RsuMacHandoff,
    /// The DENM frame (or cellular message) arrives at the OBU.
    ObuRx {
        /// Shared bytes of the DENM payload (encoded once at the RSU;
        /// every hop and repetition clones the `Arc`, not the bytes).
        denm_bytes: std::sync::Arc<[u8]>,
    },
    /// A CAM frame arrives at the RSU.
    RsuCamRx {
        /// Wire bytes of the full GN frame. The buffer comes from the
        /// scenario's frame pool and returns to it after delivery, so
        /// the steady-state beacon loop allocates nothing.
        frame: Vec<u8>,
    },
    /// The vehicle's polling script fires.
    VehiclePoll,
    /// The poll response (carrying a DENM) reaches the control logic.
    PlannerNotified {
        /// Shared bytes of the DENM payload.
        denm_bytes: std::sync::Arc<[u8]>,
    },
    /// The physical power cut takes effect at the ESC.
    PowerCutApplied,
    /// The RSU beacons a liveness CAM (only scheduled when the vehicle's
    /// V2X watchdog is configured).
    RsuHeartbeat,
    /// A CAM frame arrives at the OBU (the watchdog's heartbeat path).
    ObuCamRx {
        /// Wire bytes of the full GN frame (pooled, like `RsuCamRx`).
        frame: Vec<u8>,
    },
}

/// Recycled per-run buffers: the event queue's slab and buckets, the
/// batch-dispatch scratch, the CAM frame pool and the small handler
/// scratch vectors. A campaign runs thousands of scenarios back to
/// back on each worker thread; recycling makes every run after the
/// first reuse the previous run's capacity instead of re-growing it.
/// Everything here is emptied before storage and reset on reuse
/// ([`EventQueue::reset`] restarts time and the FIFO `seq` at zero),
/// so a recycled run is bit-for-bit identical to a fresh one.
#[derive(Default)]
struct RunScratch {
    queue: EventQueue<Event>,
    batch: Vec<Event>,
    frames: Vec<Vec<u8>>,
    detections: Vec<Detection>,
    pending: Vec<std::sync::Arc<[u8]>>,
    denm_packets: Vec<geonet::GnPacket>,
}

thread_local! {
    /// Per-thread scratch slot — thread-local keeps campaign workers
    /// (threads or shard processes) fully independent.
    static RUN_SCRATCH: std::cell::RefCell<Option<RunScratch>> =
        const { std::cell::RefCell::new(None) };
}

/// The assembled scenario state.
pub struct Scenario {
    config: ScenarioConfig,
    rng_channel: SimRng,
    rng_detector: SimRng,
    rng_timing: SimRng,
    channel: Channel,
    cellular: Option<CellularLink>,
    medium: Medium,
    // Stations.
    rsu: ItsStation,
    obu: ItsStation,
    // Edge perception.
    hazard: HazardAdvertisementService,
    tracker: Tracker,
    edge_clock: NodeClock,
    ecu_clock: NodeClock,
    // Vehicle.
    car: LongitudinalModel,
    pose: BicycleState,
    follower: LineFollower,
    planner: MotionPlanner,
    track: Track,
    throttle: f64,
    odometry: WheelOdometry,
    pending_denm: Vec<std::sync::Arc<[u8]>>,
    detect_scratch: Vec<Detection>,
    frame_pool: Vec<Vec<u8>>,
    denm_scratch: Vec<geonet::GnPacket>,
    poll_phase: SimDuration,
    link_cache: LinkCache,
    // Fault plane.
    injector: FaultInjector,
    watchdog: Option<V2xWatchdog>,
    // Bookkeeping.
    record: RunRecord,
    done: bool,
    next_object_id: u32,
}

impl std::fmt::Debug for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scenario")
            .field("seed", &self.config.seed)
            .field("done", &self.done)
            .finish()
    }
}

impl Scenario {
    /// Builds a scenario from its configuration.
    pub fn new(config: ScenarioConfig) -> Self {
        let root = SimRng::seed_from(config.seed);
        let mut rng_clocks = root.fork("clocks");
        let edge_clock = NodeClock::sample(&config.ntp, &mut rng_clocks, 0);
        let rsu_clock = NodeClock::sample(&config.ntp, &mut rng_clocks, 0);
        let obu_clock = NodeClock::sample(&config.ntp, &mut rng_clocks, 0);
        let ecu_clock = NodeClock::sample(&config.ntp, &mut rng_clocks, 0);

        let mut rsu = ItsStation::new(
            StationConfig::rsu(StationId::new(15).expect("static id")), // detlint:allow(S3) static id 15 is always in the station-id range
            rsu_clock,
        );
        rsu.set_position(config.rsu_position);
        let mut obu = ItsStation::new(
            StationConfig::obu(StationId::new(7).expect("static id")), // detlint:allow(S3) static id 7 is always in the station-id range
            obu_clock,
        );
        obu.set_position(Position2D::new(config.start_distance_m, 0.0));

        let (ev_lat, ev_lon) = lab_to_geo(GEO_ORIGIN, Position2D::new(0.0, 0.0));
        let hazard_cfg = HazardConfig {
            action_point_m: config.action_point_m,
            ..HazardConfig::paper_setup(ReferencePosition::from_degrees(ev_lat, ev_lon))
        };

        // Per-run physical variability: tire/drivetrain state and the
        // exact approach speed differ slightly between the paper's runs
        // (Table III spans 0.31–0.43 m).
        let mut rng_vehicle = root.fork("vehicle");
        let mut params = config.vehicle;
        params.drivetrain_drag_n_per_mps *= rng_vehicle.normal(1.0, 0.07).clamp(0.8, 1.2);
        params.rolling_resistance *= rng_vehicle.normal(1.0, 0.05).clamp(0.85, 1.15);
        let speed = config.cruise_speed_mps * rng_vehicle.normal(1.0, 0.04).clamp(0.9, 1.1);
        let mut car = LongitudinalModel::new(params);
        car.set_speed(speed);
        let pose = BicycleState {
            x: config.start_distance_m,
            y: 0.0,
            theta: std::f64::consts::PI, // driving toward the camera (-x)
        };
        let mut rng_timing = root.fork("timing");
        let poll_phase =
            SimDuration::from_secs_f64(rng_timing.f64() * config.polling.period.as_secs_f64());

        let cellular = match config.denm_link {
            DenmLink::Cellular(profile) => Some(CellularLink::new(profile)),
            DenmLink::Its80211p => None,
        };

        Self {
            channel: Channel::new(config.channel.clone()),
            cellular,
            medium: Medium::new(),
            rng_channel: root.fork("channel"),
            rng_detector: root.fork("detector"),
            rng_timing,
            rsu,
            obu,
            hazard: HazardAdvertisementService::new(hazard_cfg),
            tracker: Tracker::new(TrackerConfig::default()),
            edge_clock,
            ecu_clock,
            car,
            pose,
            follower: LineFollower::new(),
            planner: MotionPlanner::new(config.cruise_throttle, config.stop_policy),
            track: Track::straight(config.start_distance_m + 2.0),
            throttle: config.cruise_throttle,
            odometry: WheelOdometry::new(3480.0),
            pending_denm: Vec::new(),
            detect_scratch: Vec::new(),
            frame_pool: Vec::new(),
            denm_scratch: Vec::new(),
            poll_phase,
            link_cache: LinkCache::new(),
            // Forking is draw-free, so carving out a dedicated fault
            // stream leaves every other stream's sequence untouched.
            injector: FaultInjector::new(config.fault_plan.clone(), root.fork("faults")),
            watchdog: config.watchdog.map(V2xWatchdog::new),
            record: RunRecord::default(),
            done: false,
            next_object_id: 1,
            config,
        }
    }

    /// Builds and runs the scenario whose seed is `base.seed + index`.
    ///
    /// This is the `Send`-safe per-job entry point the parallel campaign
    /// runner executes: it takes the shared base configuration by
    /// reference and every piece of run state lives on the worker's own
    /// stack, so runs on different threads cannot interact.
    pub fn run_seeded(base: &ScenarioConfig, index: u64) -> RunRecord {
        Scenario::new(ScenarioConfig {
            seed: base.seed + index,
            ..base.clone()
        })
        .run()
    }

    /// Runs the scenario to completion (or timeout) and returns the
    /// record.
    pub fn run(mut self) -> RunRecord {
        let mut scratch = RUN_SCRATCH
            .with(|s| s.borrow_mut().take())
            .unwrap_or_default();
        let mut queue = scratch.queue;
        self.frame_pool = scratch.frames;
        self.detect_scratch = scratch.detections;
        self.pending_denm = scratch.pending;
        self.denm_scratch = scratch.denm_packets;
        queue.schedule_at(SimTime::ZERO, Event::ControlTick);
        queue.schedule_at(
            self.config.camera.next_frame_completion(SimTime::ZERO),
            Event::CameraFrame,
        );
        queue.schedule_at(
            self.config
                .polling
                .next_poll(SimTime::ZERO, self.poll_phase),
            Event::VehiclePoll,
        );
        // The heartbeat stream only exists when the watchdog does, so a
        // watchdog-less run keeps the baseline event schedule bit for bit.
        if let Some(wcfg) = self.config.watchdog {
            queue.schedule_at(SimTime::ZERO + wcfg.heartbeat_period, Event::RsuHeartbeat);
        }
        let timeout = SimTime::ZERO + self.config.timeout;
        // Batched dispatch: same-instant events (the t=0 kickoff, the
        // periodic control/poll coincidences) come out of the queue in
        // one pop each; the global (time, seq) order is identical to
        // the one-at-a-time loop. The scratch buffer is reused for the
        // whole run, so the dispatch loop allocates once.
        let mut batch = scratch.batch;
        if batch.capacity() == 0 {
            batch.reserve(8);
        }
        run_batched(&mut self, &mut queue, timeout, &mut batch);
        self.record.events_dispatched = queue.dispatched();
        // Return the run's buffers to the thread's scratch slot, empty.
        queue.reset();
        batch.clear();
        self.pending_denm.clear();
        self.detect_scratch.clear();
        scratch = RunScratch {
            queue,
            batch,
            frames: std::mem::take(&mut self.frame_pool),
            detections: std::mem::take(&mut self.detect_scratch),
            pending: std::mem::take(&mut self.pending_denm),
            denm_packets: std::mem::take(&mut self.denm_scratch),
        };
        RUN_SCRATCH.with(|s| *s.borrow_mut() = Some(scratch));
        let mut fault = self.injector.stats();
        if let Some(wd) = &self.watchdog {
            let trips = wd.trips();
            fault.watchdog_speed_caps = trips.speed_caps;
            fault.watchdog_stops = trips.stops;
            fault.watchdog_recoveries = trips.recoveries;
        }
        self.record.coop.failsafe_stops = u64::from(fault.failsafe_stop);
        self.record.fault = fault;
        self.record
    }

    /// Whether the fault plane can change this run's behaviour at all.
    /// Gates the overrun outcome so baseline runs never evaluate it.
    fn fault_active(&self) -> bool {
        !self.config.fault_plan.is_empty() || self.watchdog.is_some()
    }

    /// A node-local wall-clock reading with any injected drift applied.
    fn skewed_wall(&self, wall_ms: u64, now: SimTime, node: FaultNode) -> u64 {
        wall_ms.saturating_add_signed(self.injector.clock_skew_ms(now, node))
    }

    /// True distance from the camera to the vehicle front.
    fn camera_distance(&self) -> f64 {
        // Camera sits at the origin; the approach is along +x. The stop
        // sign rides over the front of the car.
        self.pose.x.max(0.0)
    }

    fn on_control_tick(&mut self, now: SimTime, queue: &mut EventQueue<Event>) {
        let dt = self.config.control_period.as_secs_f64();
        // Watchdog: re-judge V2X liveness each control period and hand
        // the degradation level to the planner (pure arithmetic).
        if let Some(wd) = self.watchdog.as_mut() {
            let level = wd.assess(now);
            self.planner.set_degradation(level);
        }
        // Perception + steering at the control rate.
        // The follower works in the vehicle frame, so it is valid for any
        // heading, including this scenario's -x approach.
        let steer = self
            .follower
            .steering(&self.pose, &self.track, dt, &mut self.rng_detector);
        let cmd = self.planner.plan(steer);
        let throttle = match cmd {
            vehicle::actuators::ActuatorCommand::Drive { throttle, .. } => {
                // The physical cut is what stops the car; until
                // PowerCutApplied fires, the old throttle stays active.
                if self.throttle > 0.0 {
                    throttle
                } else {
                    0.0
                }
            }
            vehicle::actuators::ActuatorCommand::CutPower => self.throttle,
        };
        let steer_cmd = match cmd {
            vehicle::actuators::ActuatorCommand::Drive { steering_rad, .. } => steering_rad,
            vehicle::actuators::ActuatorCommand::CutPower => 0.0,
        };
        let ds = self.car.step(dt, throttle);
        self.pose
            .advance(ds, steer_cmd, self.config.vehicle.wheelbase_m);

        // Step 1: ground-truth Action Point crossing.
        if self.record.step1_crossing.is_none()
            && self.camera_distance() <= self.config.action_point_m
        {
            self.record.step1_crossing = Some(now);
            self.record.trace.record_fmt(
                now,
                "world",
                "action_point",
                format_args!("x={:.3}", self.pose.x),
            );
        }

        // Step 6: standstill after the power cut.
        if self.record.step6_halt.is_none()
            && self.record.step5_actuation.is_some()
            && self.car.speed_mps() <= 0.0
        {
            self.record.step6_halt = Some(now);
            self.record.odometer_at_halt_m = Some(self.car.distance_m());
            self.record.halt_distance_to_camera_m = Some(self.pose.x);
            self.record.trace.record_fmt(
                now,
                "world",
                "halt",
                format_args!("odo={:.3}", self.car.distance_m()),
            );
            self.done = true;
            return;
        }

        // Fail-safe halt: the watchdog commanded a controlled stop and
        // the vehicle came to rest without the DENM pipeline completing.
        // Step 6 stays unset — the paper's chain did not act — but the
        // halt position is recorded as the safety outcome.
        if self.record.step6_halt.is_none()
            && self.record.step5_actuation.is_none()
            && self.car.speed_mps() <= 0.0
            && self
                .watchdog
                .as_ref()
                .is_some_and(|wd| wd.level() == DegradationLevel::ControlledStop)
        {
            self.injector.stats_mut().failsafe_stop = true;
            self.record.odometer_at_halt_m = Some(self.car.distance_m());
            self.record.halt_distance_to_camera_m = Some(self.pose.x);
            self.record.trace.record_fmt(
                now,
                "vehicle",
                "failsafe_stop",
                format_args!("odo={:.3}", self.car.distance_m()),
            );
            self.done = true;
            return;
        }

        // Overrun: under faults the emergency chain can fail outright;
        // driving past the camera is the collision outcome and ends the
        // run. Never evaluated on the baseline path.
        if self.fault_active() && self.pose.x <= 0.0 {
            self.injector.stats_mut().overran_camera = true;
            self.record.trace.record_fmt(
                now,
                "world",
                "overrun",
                format_args!("x={:.3}", self.pose.x),
            );
            self.done = true;
            return;
        }

        // Keep the OBU position in sync and poll the CA service. Speed
        // comes from the wheel encoder (what the real OBU would see),
        // not from ground truth.
        let ticks = self.odometry.advance(ds);
        let measured_speed = self.odometry.speed_from_window(ticks, dt);
        self.obu
            .set_position(Position2D::new(self.pose.x, self.pose.y));
        self.obu
            .set_motion(measured_speed, 270.0 /* heading -x ≈ west */);
        let obu_down = self.injector.node_down(now, FaultNode::Obu);
        if !obu_down {
            let mut frame = self.take_frame();
            if self.obu.poll_cam_frame(now, &mut frame).unwrap_or(false)
                && !self.injector.radio_drop(now, FaultNode::Obu)
            {
                self.transmit_cam_frame(now, frame, queue);
            } else {
                self.recycle_frame(frame);
            }
        }

        if !self.done {
            queue.schedule_after(now, self.config.control_period, Event::ControlTick);
        }
    }

    /// A cleared frame buffer from the pool (or a fresh one).
    fn take_frame(&mut self) -> Vec<u8> {
        self.frame_pool.pop().unwrap_or_default()
    }

    /// Returns a frame buffer to the pool for reuse.
    fn recycle_frame(&mut self, mut frame: Vec<u8>) {
        frame.clear();
        self.frame_pool.push(frame);
    }

    /// Puts an OBU CAM frame on the air: channel access, airtime,
    /// congestion feedback, loss, corruption, and — when delivered —
    /// the RSU's receive event. Consumes the buffer either way (an
    /// undelivered frame goes back to the pool).
    fn transmit_cam_frame(
        &mut self,
        now: SimTime,
        mut frame: Vec<u8>,
        queue: &mut EventQueue<Event>,
    ) {
        // The frame was just written by the OBU, so it parses.
        let Ok(f) = geonet::GnFrame::parse(&frame) else {
            self.recycle_frame(frame);
            return;
        };
        let start = self
            .obu
            .channel_access_frame(now, &f, &self.medium, &mut self.rng_timing);
        let at = airtime(frame.len(), self.obu.config().data_rate);
        self.medium.occupy(start + at);
        // Congestion feedback: both radios hear the frame.
        self.obu.observe_channel_busy(now, at);
        self.rsu.observe_channel_busy(now, at);
        let outcome = self.channel.transmit_cached(
            start,
            self.obu.position(),
            self.rsu.position(),
            frame.len(),
            self.obu.config().data_rate,
            &mut self.rng_channel,
            &mut self.link_cache,
        );
        if outcome.delivered {
            // Bit corruption mutates the on-air frame; the RSU's real
            // GeoNetworking decoder gets to reject (or survive) the
            // result.
            if let Some(corrupted) = self.injector.corrupt_frame(now, &frame) {
                self.recycle_frame(frame);
                frame = corrupted;
            }
            queue.schedule_at(outcome.arrival, Event::RsuCamRx { frame });
        } else {
            self.recycle_frame(frame);
        }
    }

    fn on_camera_frame(&mut self, now: SimTime, queue: &mut EventQueue<Event>) {
        // A crashed edge node captures nothing (frames resume on
        // reboot); a dropped frame is lost but the pipeline keeps going.
        let edge_down = self.injector.node_down(now, FaultNode::Edge);
        let frame_lost = !edge_down && self.injector.drop_camera_frame(now);
        // Capture the world now; the detection output appears after the
        // inference latency.
        let target = GroundTruthTarget {
            id: self.next_object_id,
            distance_m: self.camera_distance(),
            bearing_deg: (self.pose.y / self.camera_distance().max(0.1))
                .atan()
                .to_degrees(),
            appearance: self.config.appearance,
        };
        if !edge_down && !frame_lost && self.config.camera.sees(&target) {
            let inference = self
                .rng_timing
                .normal(self.config.inference_mean_s, self.config.inference_std_s)
                .clamp(0.05, 0.249);
            let output_at = now + SimDuration::from_secs_f64(inference);
            let mut detections = std::mem::take(&mut self.detect_scratch);
            detections.clear();
            self.config.yolo.process_frame_into(
                output_at,
                &[target],
                &mut self.rng_detector,
                &mut detections,
            );
            for d in detections.drain(..) {
                if self.injector.drop_detection(now) {
                    continue;
                }
                queue.schedule_at(output_at, Event::DetectionOutput(d));
            }
            self.detect_scratch = detections;
        }
        // Detector hallucination: a phantom object independent of any
        // real target, emitted after the nominal inference latency.
        if !edge_down && !frame_lost {
            if let Some((distance, confidence)) = self.injector.phantom_detection(now) {
                let output_at = now + SimDuration::from_secs_f64(self.config.inference_mean_s);
                let phantom = Detection {
                    target_id: self.next_object_id,
                    label: "phantom",
                    confidence,
                    estimated_distance_m: distance,
                    frame_time: output_at,
                };
                queue.schedule_at(output_at, Event::DetectionOutput(phantom));
            }
        }
        if !self.done {
            queue.schedule_at(
                self.config.camera.next_frame_completion(now),
                Event::CameraFrame,
            );
        }
    }

    fn on_detection_output(
        &mut self,
        now: SimTime,
        detection: Detection,
        queue: &mut EventQueue<Event>,
    ) {
        // The edge node crashed between capture and inference output.
        if self.injector.node_down(now, FaultNode::Edge) {
            return;
        }
        // Record the object in the (RSU-hosted) LDM like OpenC2X does.
        let (lat, lon) = lab_to_geo(
            GEO_ORIGIN,
            Position2D::new(detection.estimated_distance_m, 0.0),
        );
        let obj = PerceivedObject {
            id: detection.target_id,
            position: ReferencePosition::from_degrees(lat, lon),
            distance_m: detection.estimated_distance_m,
            class_label: detection.label,
            confidence: detection.confidence,
        };
        self.next_object_id += 1;
        self.rsu.ldm_mut().insert_object(now, obj);

        let wall = its_messages::common::TimestampIts::new(
            self.edge_clock.wall_millis(now) & ((1 << 42) - 1),
        )
        .expect("edge wall clock in range"); // detlint:allow(S3) masked to 42 bits on the line above, always in range
        let decision = match self.config.hazard_rule {
            HazardRule::ActionPoint => {
                self.hazard
                    .assess(&detection, self.rsu.ldm(), wall, &mut self.rng_timing)
            }
            HazardRule::TimeToCollision { ttc_s, min_hits } => {
                self.tracker.update(now, std::slice::from_ref(&detection));
                match self.tracker.most_urgent(min_hits) {
                    Some(track) => {
                        let track = track.clone();
                        self.hazard.assess_track(
                            &track,
                            min_hits,
                            ttc_s,
                            self.rsu.ldm(),
                            wall,
                            now,
                            &mut self.rng_timing,
                        )
                    }
                    None => HazardDecision::OutsideActionPoint,
                }
            }
        };
        if let HazardDecision::TriggerDenm { decided_at, .. } = decision {
            // Step 2: "the YOLO software registers the time the vehicle
            // is crossing the Action Point".
            self.record.step2_detection = Some(now);
            self.record.step2_wall_ms =
                Some(self.skewed_wall(self.edge_clock.wall_millis(now), now, FaultNode::Edge));
            self.record.odometer_at_detection_m = Some(self.car.distance_m());
            self.record.speed_at_detection_mps = self.car.speed_mps();
            self.record.detection_distance_m = Some(detection.estimated_distance_m);
            self.record.trace.record_fmt(
                now,
                "edge",
                "detect",
                format_args!(
                    "d={:.2} label={}",
                    detection.estimated_distance_m, detection.label
                ),
            );
            // The trigger POST crosses the edge→RSU LAN. The jitter tail
            // is truncated at 3× its mean: on an otherwise idle LAN the
            // TCP exchange has a bounded worst case (the paper's five
            // runs show #2→#3 spanning only 21–34 ms).
            let jitter_mean = self.config.trigger_http_jitter_mean.as_secs_f64().max(1e-9);
            let jitter = self
                .rng_timing
                .exponential(jitter_mean)
                .min(3.0 * jitter_mean);
            let http = self.config.trigger_http_base + SimDuration::from_secs_f64(jitter);
            queue.schedule_at(decided_at + http, Event::TriggerArrives);
        }
    }

    fn on_trigger_arrives(&mut self, now: SimTime, queue: &mut EventQueue<Event>) {
        // A crashed RSU never sees the POST; its volatile DEN state is
        // gone, so the trigger is simply lost.
        if self.injector.node_down(now, FaultNode::Rsu) {
            return;
        }
        // The RSU's DEN app builds and encodes the DENM.
        let build = SimDuration::from_secs_f64(
            self.rng_timing
                .normal(
                    self.config.denm_build_mean_s,
                    self.config.denm_build_mean_s / 4.0,
                )
                .max(0.0002),
        );
        let (lat, lon) = lab_to_geo(GEO_ORIGIN, Position2D::new(0.0, 0.0));
        let wall = self.rsu.wall(now);
        let mut request = facilities::den::DenRequest::one_shot(
            wall,
            ReferencePosition::from_degrees(lat, lon),
            its_messages::cause_codes::CauseCode::CollisionRisk(
                its_messages::cause_codes::CollisionRiskSubCause::CrossingCollisionRisk,
            ),
        );
        if let Some((interval, duration)) = self.config.denm_repetition {
            request.repetition_interval = Some(interval);
            request.repetition_duration = Some(duration);
        }
        self.rsu.trigger_denm(now, request);
        queue.schedule_after(now, build, Event::RsuMacHandoff);
    }

    fn on_rsu_mac_handoff(&mut self, now: SimTime, queue: &mut EventQueue<Event>) {
        if self.injector.node_down(now, FaultNode::Rsu) {
            return;
        }
        let mut packets = std::mem::take(&mut self.denm_scratch);
        packets.clear();
        if self.rsu.poll_denm_into(now, &mut packets).is_err() {
            self.denm_scratch = packets;
            return;
        }
        for packet in &packets {
            // Step 3: the RSU registers the send time (first copy only —
            // repetitions do not rewrite the measurement).
            if self.record.step3_rsu_send.is_none() {
                self.record.step3_rsu_send = Some(now);
                self.record.step3_wall_ms =
                    Some(self.skewed_wall(self.rsu.wall(now).millis(), now, FaultNode::Rsu));
            }
            self.record.trace.record_fmt(
                now,
                "rsu",
                "denm_tx",
                format_args!("{} bytes", packet.wire_size()),
            );
            // Radio faults sit between the MAC and the channel model:
            // the RSU believes it sent (step 3 stands) but nothing is
            // ever on the air.
            if self.injector.radio_drop(now, FaultNode::Rsu) {
                continue;
            }
            match self.config.denm_link {
                DenmLink::Its80211p => {
                    let mut bytes = self.take_frame();
                    packet.as_frame().write_to(&mut bytes);
                    let start =
                        self.rsu
                            .channel_access(now, packet, &self.medium, &mut self.rng_timing);
                    let at = airtime(bytes.len(), self.rsu.config().data_rate);
                    self.medium.occupy(start + at);
                    self.obu.observe_channel_busy(now, at);
                    self.rsu.observe_channel_busy(now, at);
                    let outcome = self.channel.transmit_cached(
                        start,
                        self.rsu.position(),
                        self.obu.position(),
                        bytes.len(),
                        self.rsu.config().data_rate,
                        &mut self.rng_channel,
                        &mut self.link_cache,
                    );
                    if outcome.delivered {
                        // RX chain processing (kernel + OpenC2X stack)
                        // before the OBU's application stamps reception.
                        let rx_proc = SimDuration::from_secs_f64(
                            self.rng_timing.normal(0.0012, 0.0004).max(0.0002),
                        );
                        // Bit corruption hits the full GN frame on the
                        // air; the real GeoNetworking parser decides
                        // whether anything survives to the facilities
                        // layer (which then re-judges the DENM bytes).
                        let payload = match self.injector.corrupt_frame(now, &bytes) {
                            None => Some(packet.payload.clone()),
                            Some(corrupted) => match geonet::GnPacket::from_bytes(&corrupted) {
                                Ok(p) => Some(p.payload),
                                Err(_) => {
                                    self.injector.note_rejected();
                                    None
                                }
                            },
                        };
                        if let Some(denm_bytes) = payload {
                            queue.schedule_at(
                                outcome.arrival + rx_proc,
                                Event::ObuRx { denm_bytes },
                            );
                        }
                    }
                    self.recycle_frame(bytes);
                }
                DenmLink::Cellular(_) => {
                    let link = self.cellular.as_ref().expect("cellular link configured"); // detlint:allow(S3) handoff events are only scheduled when a cellular link exists
                    let outcome = link.send(now, &mut self.rng_timing);
                    if outcome.delivered {
                        queue.schedule_at(
                            outcome.arrival,
                            Event::ObuRx {
                                denm_bytes: packet.payload.clone(),
                            },
                        );
                    }
                }
            }
        }
        packets.clear();
        self.denm_scratch = packets;
        // Repetitions: poll again when the DEN service next has one due.
        if !self.done {
            if let Some(next) = self.rsu.next_denm_due() {
                queue.schedule_at(next.max(now), Event::RsuMacHandoff);
            }
        }
    }

    fn on_obu_rx(&mut self, now: SimTime, denm_bytes: std::sync::Arc<[u8]>) {
        if self.injector.node_down(now, FaultNode::Obu) {
            return;
        }
        // With the fault plane active the OBU's facilities layer
        // re-validates the payload (corruption may have survived the GN
        // header): a mangled DENM is rejected before the application
        // ever sees it, and a decodable one doubles as a watchdog
        // heartbeat. Skipped entirely on the baseline path.
        if self.fault_active() {
            if its_messages::denm::Denm::from_bytes(&denm_bytes).is_err() {
                self.injector.note_rejected();
                return;
            }
            if let Some(wd) = self.watchdog.as_mut() {
                wd.heartbeat(now);
            }
        }
        // Step 4: OBU registers DENM reception (first copy only).
        if self.record.step4_obu_recv.is_none() {
            self.record.step4_obu_recv = Some(now);
            self.record.step4_wall_ms =
                Some(self.skewed_wall(self.obu.wall(now).millis(), now, FaultNode::Obu));
            self.record.denm_delivered = true;
            self.record.trace.record_fmt(
                now,
                "obu",
                "denm_rx",
                format_args!("{} bytes", denm_bytes.len()),
            );
        }
        self.pending_denm.push(denm_bytes);
    }

    fn on_vehicle_poll(&mut self, now: SimTime, queue: &mut EventQueue<Event>) {
        // A crashed ECU skips this poll period but keeps the schedule:
        // the polling script restarts with the node and resumes below.
        let ecu_down = self.injector.node_down(now, FaultNode::Ecu);
        if !ecu_down && !self.pending_denm.is_empty() {
            // The blocking GET runs the deterministic bounded
            // retry/backoff schedule; injected stalls are judged at the
            // simulated instant each attempt would start.
            let policy = self.config.poll_retry;
            let injector = &mut self.injector;
            match poll_with_retry(&policy, |_, offset| injector.http_stall(now + offset)) {
                Ok(outcome) => {
                    let denm_bytes = self.pending_denm.remove(0);
                    // Localhost RTT with a truncated tail (same rationale
                    // as the trigger POST above).
                    let rtt = self
                        .config
                        .polling
                        .sample_http_rtt(&mut self.rng_timing)
                        .min(self.config.polling.http_base * 4);
                    queue.schedule_after(
                        now,
                        outcome.delay + rtt,
                        Event::PlannerNotified { denm_bytes },
                    );
                }
                Err(_) => {
                    // Budget exhausted: the DENM stays queued on the OBU
                    // for the next poll period.
                    self.injector.stats_mut().http_giveups += 1;
                }
            }
        }
        if !self.done && self.record.step5_actuation.is_none() {
            queue.schedule_at(
                self.config
                    .polling
                    .next_poll(now + SimDuration::from_nanos(1), self.poll_phase),
                Event::VehiclePoll,
            );
        }
    }

    fn on_planner_notified(
        &mut self,
        now: SimTime,
        denm_bytes: std::sync::Arc<[u8]>,
        queue: &mut EventQueue<Event>,
    ) {
        if self.injector.node_down(now, FaultNode::Ecu) {
            return;
        }
        let Ok(denm) = its_messages::denm::Denm::from_bytes(&denm_bytes) else {
            self.injector.note_rejected();
            return;
        };
        let newly_stopped = self.planner.on_denm(&denm);
        if newly_stopped && self.record.step5_actuation.is_none() {
            // Step 5: the ECU registers the command to the actuators.
            let issue =
                SimDuration::from_secs_f64(self.rng_timing.normal(0.0003, 0.0001).max(0.00005));
            let at = now + issue;
            self.record.step5_actuation = Some(at);
            self.record.step5_wall_ms =
                Some(self.skewed_wall(self.ecu_clock.wall_millis(at), at, FaultNode::Ecu));
            self.record
                .trace
                .record(at, "ecu", "cut_cmd", "power cut commanded");
            // The physical cut lands after the Teensy/ESC path.
            let physical = self.config.teensy.sample_latency(&mut self.rng_timing);
            queue.schedule_at(at + physical, Event::PowerCutApplied);
        }
    }

    fn on_power_cut(&mut self, now: SimTime) {
        self.throttle = 0.0;
        self.record
            .trace
            .record(now, "ecu", "power_cut", "ESC output disabled");
    }

    /// The RSU's liveness beacon (only scheduled with a watchdog): a
    /// forced CAM through the real MAC + channel + decode path, so every
    /// radio fault class also starves the heartbeat.
    fn on_rsu_heartbeat(&mut self, now: SimTime, queue: &mut EventQueue<Event>) {
        let Some(period) = self
            .watchdog
            .as_ref()
            .map(|wd| wd.config().heartbeat_period)
        else {
            return;
        };
        if !self.done {
            queue.schedule_after(now, period, Event::RsuHeartbeat);
        }
        if self.injector.node_down(now, FaultNode::Rsu)
            || self.injector.radio_drop(now, FaultNode::Rsu)
        {
            return;
        }
        let Ok(packet) = self.rsu.heartbeat_cam(now) else {
            return;
        };
        let bytes = packet.to_bytes();
        let start = self
            .rsu
            .channel_access(now, &packet, &self.medium, &mut self.rng_timing);
        let at = airtime(bytes.len(), self.rsu.config().data_rate);
        self.medium.occupy(start + at);
        self.obu.observe_channel_busy(now, at);
        self.rsu.observe_channel_busy(now, at);
        let outcome = self.channel.transmit_cached(
            start,
            self.rsu.position(),
            self.obu.position(),
            bytes.len(),
            self.rsu.config().data_rate,
            &mut self.rng_channel,
            &mut self.link_cache,
        );
        if outcome.delivered {
            let frame = match self.injector.corrupt_frame(now, &bytes) {
                Some(corrupted) => corrupted,
                None => bytes,
            };
            queue.schedule_at(outcome.arrival, Event::ObuCamRx { frame });
        }
    }

    fn on_obu_cam_rx(&mut self, now: SimTime, frame: Vec<u8>) {
        if self.injector.node_down(now, FaultNode::Obu) {
            self.recycle_frame(frame);
            return;
        }
        match geonet::GnFrame::parse(&frame) {
            Ok(f) => {
                // Only a CAM the full stack accepted counts as liveness.
                if self.obu.on_frame(now, &f) != FrameOutcome::Ignored {
                    if let Some(wd) = self.watchdog.as_mut() {
                        wd.heartbeat(now);
                    }
                }
            }
            Err(_) => self.injector.note_rejected(),
        }
        self.recycle_frame(frame);
    }
}

impl EventHandler for Scenario {
    type Event = Event;

    fn handle(&mut self, now: SimTime, event: Event, queue: &mut EventQueue<Event>) {
        if self.done {
            return;
        }
        match event {
            Event::ControlTick => self.on_control_tick(now, queue),
            Event::CameraFrame => self.on_camera_frame(now, queue),
            Event::DetectionOutput(d) => self.on_detection_output(now, d, queue),
            Event::TriggerArrives => self.on_trigger_arrives(now, queue),
            Event::RsuMacHandoff => self.on_rsu_mac_handoff(now, queue),
            Event::ObuRx { denm_bytes } => self.on_obu_rx(now, denm_bytes),
            Event::RsuCamRx { frame } => {
                match geonet::GnFrame::parse(&frame) {
                    Ok(f) => {
                        if !self.injector.node_down(now, FaultNode::Rsu)
                            && self.rsu.on_frame(now, &f) != FrameOutcome::Ignored
                        {
                            self.record.cams_received += 1;
                        }
                    }
                    Err(_) => self.injector.note_rejected(),
                }
                self.recycle_frame(frame);
            }
            Event::VehiclePoll => self.on_vehicle_poll(now, queue),
            Event::PlannerNotified { denm_bytes } => {
                self.on_planner_notified(now, denm_bytes, queue)
            }
            Event::PowerCutApplied => self.on_power_cut(now),
            Event::RsuHeartbeat => self.on_rsu_heartbeat(now, queue),
            Event::ObuCamRx { frame } => self.on_obu_cam_rx(now, frame),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_run_completes_the_pipeline() {
        let record = Scenario::new(ScenarioConfig::default()).run();
        assert!(record.completed(), "record: {record:?}");
        assert!(record.denm_delivered);
        assert!(record.step1_crossing.is_some());
        // Causality in simulation time.
        let s2 = record.step2_detection.unwrap();
        let s3 = record.step3_rsu_send.unwrap();
        let s4 = record.step4_obu_recv.unwrap();
        let s5 = record.step5_actuation.unwrap();
        let s6 = record.step6_halt.unwrap();
        assert!(s2 < s3 && s3 < s4 && s4 < s5 && s5 < s6);
    }

    #[test]
    fn total_delay_under_100ms() {
        for seed in 1..=10 {
            let record = Scenario::new(ScenarioConfig {
                seed,
                ..ScenarioConfig::default()
            })
            .run();
            let total = record.total_delay_ms().expect("completed run");
            assert!(total > 0 && total < 100, "seed {seed}: total {total} ms");
        }
    }

    #[test]
    fn braking_distance_in_table_iii_band() {
        for seed in 1..=10 {
            let record = Scenario::new(ScenarioConfig {
                seed,
                ..ScenarioConfig::default()
            })
            .run();
            let d = record.braking_distance_m().expect("completed run");
            assert!((0.25..=0.50).contains(&d), "seed {seed}: braking {d} m");
        }
    }

    #[test]
    fn rsu_tracks_vehicle_via_cams() {
        let record = Scenario::new(ScenarioConfig::default()).run();
        assert!(record.cams_received > 0, "CAMs flowed to the RSU");
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = ScenarioConfig {
            seed: 42,
            ..ScenarioConfig::default()
        };
        let a = Scenario::new(cfg.clone()).run();
        let b = Scenario::new(cfg).run();
        assert_eq!(a.trace.digest(), b.trace.digest());
        assert_eq!(a.total_delay_ms(), b.total_delay_ms());
        assert_eq!(a.braking_distance_m(), b.braking_distance_m());
    }

    #[test]
    fn different_seeds_vary() {
        let a = Scenario::new(ScenarioConfig {
            seed: 1,
            ..ScenarioConfig::default()
        })
        .run();
        let b = Scenario::new(ScenarioConfig {
            seed: 2,
            ..ScenarioConfig::default()
        })
        .run();
        assert_ne!(a.trace.digest(), b.trace.digest());
    }

    #[test]
    fn ttc_rule_completes_pipeline_and_triggers_earlier() {
        // A generous TTC threshold fires while the car is still farther
        // out than the 1.52 m action point.
        let ttc = Scenario::new(ScenarioConfig {
            seed: 8,
            hazard_rule: HazardRule::TimeToCollision {
                ttc_s: 2.0,
                min_hits: 3,
            },
            ..ScenarioConfig::default()
        })
        .run();
        assert!(ttc.completed(), "{ttc:?}");
        let ap = Scenario::new(ScenarioConfig {
            seed: 8,
            ..ScenarioConfig::default()
        })
        .run();
        // TTC 2 s at 1.5 m/s ≈ 3 m range: earlier than the 1.52 m point.
        assert!(
            ttc.step2_detection.unwrap() < ap.step2_detection.unwrap(),
            "ttc {:?} vs action point {:?}",
            ttc.step2_detection,
            ap.step2_detection
        );
    }

    #[test]
    fn cellular_link_slower_than_80211p() {
        let direct = Scenario::new(ScenarioConfig {
            seed: 3,
            ..ScenarioConfig::default()
        })
        .run();
        let cellular = Scenario::new(ScenarioConfig {
            seed: 3,
            denm_link: DenmLink::Cellular(CellularProfile::lte_uu()),
            ..ScenarioConfig::default()
        })
        .run();
        let d34_direct = direct.interval_3_4_ms().unwrap();
        let d34_cell = cellular.interval_3_4_ms().unwrap();
        assert!(
            d34_cell > d34_direct,
            "cellular {d34_cell} ms vs direct {d34_direct} ms"
        );
    }
}
