//! City-scale beaconing scenario: an urban Manhattan grid of CAM-ing
//! vehicles plus DENM-issuing RSUs, with spatial-grid receiver culling.
//!
//! This is the paper's §V scaling question pushed to city size: what
//! does the ITS access layer do when hundreds-to-thousands of stations
//! share the channel? A naive broadcast evaluates shadowing and
//! frame-error draws for every one of N receivers, making each tick
//! O(N²). Here a [`phy80211p::SpatialGrid`] culls receivers beyond the
//! channel's [`cutoff radius`](phy80211p::channel::Channel::cutoff_radius_m),
//! where the total delivery probability is provably below
//! `2 × CULL_EPS` (DESIGN.md §13) — so culled receivers are not
//! evaluated *at all* and consume **zero** RNG draws.
//!
//! Determinism under culling: per-receiver randomness comes from a
//! stream forked per `(frame, receiver)` label
//! ([`sim_core::SimRng::fork_u64`]), never from a shared sequential
//! stream. Whether a receiver is evaluated therefore cannot perturb any
//! other receiver's draws, and the [`exhaustive`](CityConfig::exhaustive)
//! reference mode (which evaluates every receiver, O(N²)) produces the
//! *bit-identical* [`CityRecord`] — pinned by `tests/culling_differential.rs`
//! and re-asserted by the `city_scale` benchmark.
//!
//! Fleet state lives in a [`StationArena`](crate::station::StationArena)
//! structure-of-arrays, so the kinematics pass, busy accounting, and
//! DCC window rolls walk contiguous arrays.

use crate::station::StationArena;
use phy80211p::channel::LinkCache;
use phy80211p::dcc::DccState;
use phy80211p::ofdm::airtime;
use phy80211p::{Channel, ChannelConfig, DataRate, Position2D, SpatialGrid};
use sim_core::{SimDuration, SimRng, SimTime};

/// Configuration of a city-scale run.
#[derive(Debug, Clone)]
pub struct CityConfig {
    /// RNG seed.
    pub seed: u64,
    /// Number of stations (vehicles + RSUs).
    pub n_stations: usize,
    /// Simulated duration.
    pub duration: SimDuration,
    /// Tick length (one kinematics + beaconing pass per tick).
    pub tick: SimDuration,
    /// Manhattan street spacing, metres.
    pub street_spacing_m: f64,
    /// Station density, stations per km². The map area scales with the
    /// station count so density — and therefore the neighbour count a
    /// transmission must evaluate — stays constant across the sweep.
    pub density_per_km2: f64,
    /// CAM frame length, bytes.
    pub cam_len_bytes: usize,
    /// DENM frame length, bytes.
    pub denm_len_bytes: usize,
    /// PHY data rate.
    pub data_rate: DataRate,
    /// How often an RSU issues a DENM (round-robin over the RSUs).
    pub denm_period: SimDuration,
    /// One station in `rsu_every` is a static RSU at an intersection.
    pub rsu_every: usize,
    /// Evaluate every receiver (O(N²) reference) instead of culling.
    /// Produces the bit-identical record; only the cost differs.
    pub exhaustive: bool,
}

impl Default for CityConfig {
    fn default() -> Self {
        Self {
            seed: 20230627,
            n_stations: 100,
            duration: SimDuration::from_secs(10),
            tick: SimDuration::from_millis(100),
            street_spacing_m: 50.0,
            density_per_km2: 120.0,
            cam_len_bytes: 100,
            denm_len_bytes: 120,
            data_rate: DataRate::Mbps6,
            denm_period: SimDuration::from_secs(1),
            rsu_every: 20,
            exhaustive: false,
        }
    }
}

/// The urban channel profile the city scenario uses: reduced transmit
/// power (10 dBm — dense deployments cannot run class C 23 dBm) and a
/// street-canyon path-loss exponent of 3.2. With the default CAM length
/// this puts the cutoff radius near 140 m, so a constant-density city
/// keeps each broadcast's neighbourhood small.
pub fn urban_channel_config() -> ChannelConfig {
    ChannelConfig {
        tx_power_dbm: 10.0,
        path_loss_exponent: 3.2,
        ..ChannelConfig::default()
    }
}

/// Result of one city run.
#[derive(Debug, Clone, PartialEq)]
pub struct CityRecord {
    /// Stations in the run.
    pub n_stations: usize,
    /// CAM frames that reached the air.
    pub cams_transmitted: u64,
    /// Delivered CAM receptions over in-cutoff reception opportunities.
    pub cam_delivery_ratio: f64,
    /// Mean channel busy ratio over all stations' completed probe
    /// windows (each station only hears in-cutoff transmissions).
    pub mean_cbr: f64,
    /// DENM frames delivered to some receiver.
    pub denm_receptions: u64,
    /// Mean DENM reception latency (queueing behind same-tick CAM
    /// airtime near the RSU, plus airtime and propagation), ms.
    pub mean_denm_latency_ms: f64,
    /// Per-receiver channel evaluations performed (each costs the two
    /// RNG draws of [`phy80211p::Channel::transmit`]). The benchmark's
    /// events/s denominator.
    pub events: u64,
    /// The most restrictive DCC state any station reached.
    pub worst_dcc_state: DccState,
}

/// Street-topology state for the Manhattan kinematics pass, kept as
/// parallel arrays so the per-tick update is one contiguous walk.
struct Streets {
    /// Map edge length, metres.
    side_m: f64,
    /// Progress along the street, metres (wraps at `side_m`).
    along: Vec<f64>,
    /// 0 = horizontal street (y fixed), 1 = vertical street (x fixed).
    axis: Vec<u8>,
    /// The fixed cross coordinate (the street's position), metres.
    cross: Vec<f64>,
    /// Signed speed along the street, m/s (0 for RSUs).
    dir_speed: Vec<f64>,
}

impl Streets {
    /// Lays out `n` stations on the grid: every `rsu_every`-th is a
    /// static RSU parked at an intersection, the rest are vehicles on
    /// random streets.
    fn layout(config: &CityConfig, rng: &mut SimRng) -> Streets {
        let n = config.n_stations;
        let area_km2 = n as f64 / config.density_per_km2.max(1e-9);
        let side_m = (area_km2.max(1e-9).sqrt() * 1000.0).max(config.street_spacing_m);
        let n_streets = (side_m / config.street_spacing_m).floor().max(1.0) as u64;
        let mut streets = Streets {
            side_m,
            along: Vec::with_capacity(n),
            axis: Vec::with_capacity(n),
            cross: Vec::with_capacity(n),
            dir_speed: Vec::with_capacity(n),
        };
        for i in 0..n {
            let street = (rng.next_u64() % n_streets) as f64 * config.street_spacing_m;
            // detlint:allow(R2) RSU-vs-vehicle follows from station index and config, constant per run
            if config.rsu_every > 0 && i % config.rsu_every == 0 {
                // RSU: parked at an intersection of two streets.
                let other = (rng.next_u64() % n_streets) as f64 * config.street_spacing_m;
                streets.along.push(other);
                streets.axis.push(0);
                streets.cross.push(street);
                streets.dir_speed.push(0.0);
            } else {
                let axis = (rng.next_u64() % 2) as u8;
                let along = rng.uniform(0.0, side_m);
                let speed = rng.uniform(6.0, 14.0);
                let sign = if rng.next_u64() % 2 == 0 { 1.0 } else { -1.0 };
                streets.along.push(along);
                streets.axis.push(axis);
                streets.cross.push(street);
                streets.dir_speed.push(sign * speed);
            }
        }
        streets
    }

    /// Advances every station `dt` along its street (wrapping at the
    /// map edge) and writes the resulting positions into the arena's
    /// coordinate arrays — contiguous passes over flat `f64` slices.
    fn advance_into(&mut self, dt: SimDuration, arena: &mut StationArena) {
        let dt_s = dt.as_secs_f64();
        let side = self.side_m;
        for (along, speed) in self.along.iter_mut().zip(self.dir_speed.iter()) {
            *along = (*along + speed * dt_s).rem_euclid(side);
        }
        for (((x, axis), along), cross) in arena
            .xs_mut()
            .iter_mut()
            .zip(self.axis.iter())
            .zip(self.along.iter())
            .zip(self.cross.iter())
        {
            *x = if *axis == 0 { *along } else { *cross };
        }
        for (((y, axis), along), cross) in arena
            .ys_mut()
            .iter_mut()
            .zip(self.axis.iter())
            .zip(self.along.iter())
            .zip(self.cross.iter())
        {
            *y = if *axis == 0 { *cross } else { *along };
        }
    }

    fn position_of(&self, i: usize) -> Position2D {
        let along = self.along.get(i).copied().unwrap_or(0.0);
        let cross = self.cross.get(i).copied().unwrap_or(0.0);
        if self.axis.get(i).copied().unwrap_or(0) == 0 {
            Position2D::new(along, cross)
        } else {
            Position2D::new(cross, along)
        }
    }
}

/// Runs one city-scale simulation.
///
/// # Panics
///
/// Panics if the configuration has no stations or a zero tick.
pub fn run_city(config: &CityConfig) -> CityRecord {
    assert!(config.n_stations > 0, "need at least one station");
    assert!(!config.tick.is_zero(), "tick must be positive");
    let root = SimRng::seed_from(config.seed);
    let mut setup_rng = root.fork("city/setup");

    let channel = Channel::new(urban_channel_config());
    let mut cache = LinkCache::new();
    // The grid query radius must bound *both* frame types; the shorter
    // frame has the lower delivery floor and therefore the larger
    // cutoff, but compute both rather than assuming.
    let cutoff = channel
        .cutoff_radius_m(config.cam_len_bytes, config.data_rate)
        .max(channel.cutoff_radius_m(config.denm_len_bytes, config.data_rate));
    let cutoff2 = cutoff * cutoff;
    let cell_m = (cutoff / 2.0).clamp(10.0, 500.0);

    let mut streets = Streets::layout(config, &mut setup_rng);
    let mut arena = StationArena::new(SimDuration::from_millis(100));
    let mut grid = SpatialGrid::new(cell_m);
    for i in 0..config.n_stations {
        let pos = streets.position_of(i);
        let heading = if streets.axis.get(i).copied().unwrap_or(0) == 0 {
            90.0
        } else {
            0.0
        };
        let speed = streets.dir_speed.get(i).copied().unwrap_or(0.0).abs();
        arena.push_station(pos, heading, speed);
        grid.insert(pos);
    }
    let rsus: Vec<u32> = (0..config.n_stations as u32)
        .filter(|i| config.rsu_every > 0 && (*i as usize) % config.rsu_every == 0)
        .collect();

    let cam_airtime = airtime(config.cam_len_bytes, config.data_rate);
    let denm_airtime = airtime(config.denm_len_bytes, config.data_rate);

    let mut frame_id: u64 = 0;
    let mut events: u64 = 0;
    let mut cam_deliveries: u64 = 0;
    let mut cam_opportunities: u64 = 0;
    let mut denm_receptions: u64 = 0;
    let mut denm_latency_ns_sum: u128 = 0;
    let mut next_denm = SimTime::ZERO + config.denm_period;
    let mut denm_round: usize = 0;
    let mut denms_sent: u64 = 0;

    let mut candidates: Vec<u32> = Vec::new();
    let mut now = SimTime::ZERO;
    let end = SimTime::ZERO + config.duration;
    while now < end {
        // 1. Kinematics: contiguous SoA pass, then refresh the grid.
        streets.advance_into(config.tick, &mut arena);
        for idx in 0..arena.station_count() as u32 {
            if let Some(pos) = arena.position_of(idx) {
                grid.relocate(idx, pos);
            }
        }

        let denm_due = next_denm <= now + config.tick;
        let denm_rsu = rsus.get(denm_round % rsus.len().max(1)).copied();
        let denm_rsu_pos = denm_rsu.and_then(|r| arena.position_of(r));
        // Airtime queued ahead of this tick's DENM by CAMs near the RSU.
        let mut denm_queue_ns: u64 = 0;

        // 2. CAM pass, station index order.
        for tx in 0..config.n_stations as u32 {
            if !arena.gate_open(tx, now) {
                continue;
            }
            let Some(tx_pos) = arena.position_of(tx) else {
                continue;
            };
            frame_id += 1;
            arena.record_tx(tx, now);
            if denm_due {
                if let Some(rsu_pos) = denm_rsu_pos {
                    let dx = tx_pos.x - rsu_pos.x;
                    let dy = tx_pos.y - rsu_pos.y;
                    if dx * dx + dy * dy <= cutoff2 {
                        denm_queue_ns = denm_queue_ns.saturating_add(cam_airtime.as_nanos());
                    }
                }
            }
            events += broadcast(
                &channel,
                &mut cache,
                &root,
                &grid,
                BroadcastFrame {
                    frame_id,
                    tx,
                    tx_pos,
                    len_bytes: config.cam_len_bytes,
                    rate: config.data_rate,
                    airtime: cam_airtime,
                    start: now,
                    cutoff,
                    exhaustive: config.exhaustive,
                    n_stations: config.n_stations as u32,
                },
                &mut candidates,
                |rx, outcome, arena: &mut StationArena| {
                    cam_opportunities += 1;
                    if outcome.delivered {
                        cam_deliveries += 1;
                        arena.record_rx(rx);
                    }
                },
                &mut arena,
            );
        }

        // 3. DENM pass: the due RSU broadcasts after this tick's CAMs.
        if denm_due {
            if let (Some(rsu), Some(rsu_pos)) = (denm_rsu, denm_rsu_pos) {
                frame_id += 1;
                arena.record_tx(rsu, now);
                denms_sent += 1;
                let start = now + SimDuration::from_nanos(denm_queue_ns);
                events += broadcast(
                    &channel,
                    &mut cache,
                    &root,
                    &grid,
                    BroadcastFrame {
                        frame_id,
                        tx: rsu,
                        tx_pos: rsu_pos,
                        len_bytes: config.denm_len_bytes,
                        rate: config.data_rate,
                        airtime: denm_airtime,
                        start,
                        cutoff,
                        exhaustive: config.exhaustive,
                        n_stations: config.n_stations as u32,
                    },
                    &mut candidates,
                    |rx, outcome, arena: &mut StationArena| {
                        if outcome.delivered {
                            denm_receptions += 1;
                            denm_latency_ns_sum += u128::from(
                                outcome.arrival.saturating_duration_since(now).as_nanos(),
                            );
                            arena.record_rx(rx);
                        }
                    },
                    &mut arena,
                );
            }
            denm_round += 1;
            next_denm = next_denm + config.denm_period;
        }

        // 4. Roll every station's CBR window (contiguous SoA pass).
        now += config.tick;
        arena.roll_windows(now);
    }

    let cams_transmitted = arena.tx_total().saturating_sub(denms_sent);
    CityRecord {
        n_stations: config.n_stations,
        cams_transmitted,
        cam_delivery_ratio: if cam_opportunities == 0 {
            0.0
        } else {
            cam_deliveries as f64 / cam_opportunities as f64
        },
        mean_cbr: arena.mean_cbr(),
        denm_receptions,
        mean_denm_latency_ms: if denm_receptions == 0 {
            0.0
        } else {
            denm_latency_ns_sum as f64 / denm_receptions as f64 / 1e6
        },
        events,
        worst_dcc_state: arena.worst_dcc_state(),
    }
}

/// One frame's broadcast parameters (bundled to keep `broadcast` small).
struct BroadcastFrame {
    frame_id: u64,
    tx: u32,
    tx_pos: Position2D,
    len_bytes: usize,
    rate: DataRate,
    airtime: SimDuration,
    start: SimTime,
    cutoff: f64,
    exhaustive: bool,
    n_stations: u32,
}

/// Evaluates one broadcast frame against its receiver set and returns
/// the number of per-receiver channel evaluations performed.
///
/// Culled mode asks the grid for the in-cutoff candidates; exhaustive
/// mode walks every station. In both modes, only in-cutoff receivers
/// observe busy airtime and count toward delivery metrics, and each
/// evaluated receiver's randomness comes from a stream forked on the
/// `(frame, receiver)` label — so the two modes produce bit-identical
/// records and differ only in evaluations performed.
#[allow(clippy::too_many_arguments)] // one call site per frame type
fn broadcast<F>(
    channel: &Channel,
    cache: &mut LinkCache,
    root: &SimRng,
    grid: &SpatialGrid,
    frame: BroadcastFrame,
    candidates: &mut Vec<u32>,
    mut on_in_cutoff: F,
    arena: &mut StationArena,
) -> u64
where
    F: FnMut(u32, &phy80211p::TransmitOutcome, &mut StationArena),
{
    let cutoff2 = frame.cutoff * frame.cutoff;
    let mut evaluations: u64 = 0;
    // The transmitter's own radio is busy for the frame duration too.
    arena.note_busy(frame.tx, frame.airtime);
    if frame.exhaustive {
        candidates.clear();
        candidates.extend(0..frame.n_stations);
    } else {
        grid.candidates_within(frame.tx_pos, frame.cutoff, candidates);
    }
    // Walk by index so the arena stays mutable inside the loop.
    for k in 0..candidates.len() {
        let Some(&rx) = candidates.get(k) else {
            continue;
        };
        if rx == frame.tx {
            continue;
        }
        let Some(rx_pos) = arena.position_of(rx) else {
            continue;
        };
        let label = (frame.frame_id << 32) | u64::from(rx);
        let mut rx_rng = root.fork_u64(label);
        let outcome = channel.transmit_cached(
            frame.start,
            frame.tx_pos,
            rx_pos,
            frame.len_bytes,
            frame.rate,
            &mut rx_rng,
            cache,
        );
        evaluations += 1;
        let dx = rx_pos.x - frame.tx_pos.x;
        let dy = rx_pos.y - frame.tx_pos.y;
        if dx * dx + dy * dy <= cutoff2 {
            arena.note_busy(rx, frame.airtime);
            on_in_cutoff(rx, &outcome, arena);
        }
    }
    evaluations
}

/// Renders a node-count sweep as a table, one whole simulated city per
/// job on `exec` (via [`crate::campaign::Executor::run_indexed`] — city
/// jobs are not scenario runs, so multi-process executors fall back to
/// their in-process path). Rows render in `counts` order, so the table
/// is identical for every executor.
pub fn sweep_city(
    exec: &impl crate::campaign::Executor,
    base: &CityConfig,
    counts: &[usize],
) -> String {
    let records = sweep_city_records(exec, base, counts);
    let mut out = String::from(
        "nodes   CAM delivery   mean CBR   DENM latency (ms)   events   worst DCC state\n",
    );
    for record in &records {
        out.push_str(&format!(
            "{:>5}   {:>12.4}   {:>8.4}   {:>17.4}   {:>6}   {:?}\n",
            record.n_stations,
            record.cam_delivery_ratio,
            record.mean_cbr,
            record.mean_denm_latency_ms,
            record.events,
            record.worst_dcc_state
        ));
    }
    out
}

/// The records behind [`sweep_city`], in `counts` order.
pub fn sweep_city_records(
    exec: &impl crate::campaign::Executor,
    base: &CityConfig,
    counts: &[usize],
) -> Vec<CityRecord> {
    exec.run_indexed(counts.len(), |i| {
        run_city(&CityConfig {
            n_stations: counts.get(i).copied().unwrap_or(1),
            ..base.clone()
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(n: usize) -> CityConfig {
        CityConfig {
            n_stations: n,
            duration: SimDuration::from_secs(2),
            ..CityConfig::default()
        }
    }

    #[test]
    fn deterministic() {
        let a = run_city(&quick(60));
        let b = run_city(&quick(60));
        assert_eq!(a, b);
    }

    #[test]
    fn culled_matches_exhaustive_bitwise() {
        let culled = run_city(&quick(80));
        let exhaustive = run_city(&CityConfig {
            exhaustive: true,
            ..quick(80)
        });
        // Same record, more work: the exhaustive reference evaluates
        // every receiver, culling only the metrics.
        assert!(exhaustive.events > culled.events);
        assert_eq!(
            CityRecord {
                events: culled.events,
                ..exhaustive
            },
            culled
        );
    }

    #[test]
    fn city_delivers_cams_and_denms() {
        let record = run_city(&quick(100));
        assert!(record.cams_transmitted > 0);
        // The cutoff circle is conservative: its outer annulus (between
        // the reliable range and the shadowing-margin cutoff) delivers
        // rarely, so the in-cutoff delivery ratio sits well below 1 but
        // must be clearly nonzero.
        assert!(
            record.cam_delivery_ratio > 0.02 && record.cam_delivery_ratio < 1.0,
            "in-cutoff delivery ratio out of range: {}",
            record.cam_delivery_ratio
        );
        assert!(record.denm_receptions > 0);
        assert!(record.mean_denm_latency_ms > 0.0);
        assert!(record.mean_cbr > 0.0);
    }

    #[test]
    fn constant_density_keeps_per_event_cost_flat() {
        // events ∝ N · neighbours; with constant density, events/N stays
        // near-constant as N grows (the whole point of culling).
        let small = run_city(&quick(50));
        let large = run_city(&quick(200));
        let per_node_small = small.events as f64 / small.n_stations as f64;
        let per_node_large = large.events as f64 / large.n_stations as f64;
        assert!(
            per_node_large < 2.5 * per_node_small,
            "per-node events should not grow with N: {per_node_small} vs {per_node_large}"
        );
    }

    #[test]
    fn sweep_renders_one_row_per_count() {
        let s = sweep_city(
            &crate::Runner::from_env(),
            &CityConfig {
                duration: SimDuration::from_secs(1),
                ..CityConfig::default()
            },
            &[20, 40],
        );
        assert!(s.starts_with("nodes"));
        assert_eq!(s.lines().count(), 3);
    }
}
