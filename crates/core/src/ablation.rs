//! Ablation sweeps over the design parameters DESIGN.md calls out: the
//! vehicle's polling period, the camera's processed frame rate, the
//! Action Point placement, the approach speed, and NTP synchronisation
//! quality. Each sweep runs a batch of scenarios per parameter value and
//! reports the metrics that parameter actually moves.
//!
//! Every sweep is expressed as a grid of [`CampaignSpec`]s — one
//! campaign of `runs` consecutive seeds per parameter value — and
//! executed through the generic [`Executor`] interface (DESIGN.md §8,
//! §10): serial, the in-process thread [`crate::Runner`], and the
//! multi-process shard coordinator all produce byte-identical
//! [`SweepTable`]s because they share the same static-chunk/index-merge
//! contract. Executors with a worker pool flatten the `(parameter, run)`
//! grid into a single row-major job list so small per-parameter
//! campaigns still fill every worker.

use crate::campaign::{CampaignSpec, Executor};
use crate::metrics::{mean, variance};
use crate::scenario::ScenarioConfig;
use openc2x::node::PollingModel;
use perception::camera::RoadSideCamera;
use sim_core::{NtpModel, SimDuration};

/// A rendered sweep: one row per parameter value, named metric columns.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepTable {
    /// Name of the swept parameter (with unit).
    pub parameter: String,
    /// Metric column names (with units).
    pub columns: Vec<String>,
    /// `(parameter value, metric values)` rows.
    pub rows: Vec<(f64, Vec<f64>)>,
}

impl SweepTable {
    /// Renders the sweep as an aligned text table.
    pub fn render(&self) -> String {
        let mut out = format!("{:<16}", self.parameter);
        for c in &self.columns {
            out.push_str(&format!("  {c:>18}"));
        }
        out.push('\n');
        for (p, vals) in &self.rows {
            out.push_str(&format!("{p:<16.2}"));
            for v in vals {
                out.push_str(&format!("  {v:>18.2}"));
            }
            out.push('\n');
        }
        out
    }

    /// The column values of the named metric.
    ///
    /// # Panics
    ///
    /// Panics if the column name is unknown.
    pub fn column(&self, name: &str) -> Vec<f64> {
        let idx = self
            .columns
            .iter()
            .position(|c| c == name)
            .unwrap_or_else(|| panic!("unknown sweep column {name}"));
        self.rows.iter().map(|(_, vals)| vals[idx]).collect()
    }
}

/// The sweep core: one [`CampaignSpec`] of `runs` consecutive seeds per
/// parameter value, executed as a grid on `exec`, each parameter's
/// records folded into one table row.
fn sweep_rows<P: Copy>(
    exec: &impl Executor,
    params: &[P],
    runs: usize,
    make_cfg: impl Fn(P) -> ScenarioConfig,
    row: impl Fn(P, &[crate::RunRecord]) -> (f64, Vec<f64>),
) -> Vec<(f64, Vec<f64>)> {
    if runs == 0 {
        return params.iter().map(|&p| row(p, &[])).collect();
    }
    let specs: Vec<CampaignSpec> = params
        .iter()
        .map(|&p| CampaignSpec::new(make_cfg(p), runs))
        .collect();
    let grid = exec.execute_grid(&specs);
    params
        .iter()
        .zip(&grid)
        .map(|(&p, recs)| row(p, recs))
        .collect()
}

fn completed_metric(
    records: &[crate::RunRecord],
    f: impl Fn(&crate::RunRecord) -> Option<f64>,
) -> f64 {
    let vals: Vec<f64> = records.iter().filter_map(&f).collect();
    if vals.is_empty() {
        f64::NAN
    } else {
        mean(&vals)
    }
}

/// Sweeps the vehicle's `request_denm` polling period: the dominant term
/// of the #4→#5 interval.
pub fn sweep_poll_period(
    exec: &impl Executor,
    base: &ScenarioConfig,
    periods_ms: &[u64],
    runs: usize,
) -> SweepTable {
    let rows = sweep_rows(
        exec,
        periods_ms,
        runs,
        |p| ScenarioConfig {
            polling: PollingModel {
                period: SimDuration::from_millis(p),
                ..base.polling
            },
            ..base.clone()
        },
        |p, records| {
            (
                p as f64,
                vec![
                    completed_metric(records, |r| r.interval_4_5_ms().map(|x| x as f64)),
                    completed_metric(records, |r| r.total_delay_ms().map(|x| x as f64)),
                    completed_metric(records, |r| r.braking_distance_m()),
                ],
            )
        },
    );
    SweepTable {
        parameter: "poll period ms".to_owned(),
        columns: vec![
            "#4->#5 (ms)".to_owned(),
            "total (ms)".to_owned(),
            "braking (m)".to_owned(),
        ],
        rows,
    }
}

/// Sweeps the camera's processed frame rate: bounds the step-1→2 gap.
pub fn sweep_camera_fps(
    exec: &impl Executor,
    base: &ScenarioConfig,
    fps_list: &[f64],
    runs: usize,
) -> SweepTable {
    let rows = sweep_rows(
        exec,
        fps_list,
        runs,
        |fps| ScenarioConfig {
            camera: RoadSideCamera {
                processed_fps: fps,
                ..base.camera
            },
            ..base.clone()
        },
        |fps, records| {
            let gap_1_2 =
                completed_metric(records, |r| match (r.step1_crossing, r.step2_detection) {
                    (Some(s1), Some(s2)) => {
                        Some(s2.saturating_duration_since(s1).as_secs_f64() * 1000.0)
                    }
                    _ => None,
                });
            (
                fps,
                vec![
                    gap_1_2,
                    completed_metric(records, |r| r.braking_distance_m()),
                    completed_metric(records, |r| r.halt_distance_to_camera_m),
                ],
            )
        },
    );
    SweepTable {
        parameter: "camera FPS".to_owned(),
        columns: vec![
            "#1->#2 gap (ms)".to_owned(),
            "braking (m)".to_owned(),
            "halt margin (m)".to_owned(),
        ],
        rows,
    }
}

/// Sweeps the Action Point placement: earlier warnings leave more margin
/// to the camera, later ones erode it.
pub fn sweep_action_point(
    exec: &impl Executor,
    base: &ScenarioConfig,
    points_m: &[f64],
    runs: usize,
) -> SweepTable {
    let rows = sweep_rows(
        exec,
        points_m,
        runs,
        |ap| ScenarioConfig {
            action_point_m: ap,
            ..base.clone()
        },
        |ap, records| {
            (
                ap,
                vec![
                    completed_metric(records, |r| r.detection_distance_m),
                    completed_metric(records, |r| r.braking_distance_m()),
                    completed_metric(records, |r| r.halt_distance_to_camera_m),
                ],
            )
        },
    );
    SweepTable {
        parameter: "action point m".to_owned(),
        columns: vec![
            "detected at (m)".to_owned(),
            "braking (m)".to_owned(),
            "halt margin (m)".to_owned(),
        ],
        rows,
    }
}

/// Sweeps the approach speed: braking distance grows superlinearly,
/// eventually eating the margin.
pub fn sweep_speed(
    exec: &impl Executor,
    base: &ScenarioConfig,
    speeds_mps: &[f64],
    runs: usize,
) -> SweepTable {
    let rows = sweep_rows(
        exec,
        speeds_mps,
        runs,
        |v| {
            // Throttle that balances rolling + aero resistance at speed v
            // for the default parameters (drive = rr·m·g + c₂·v²).
            let throttle = ((0.08 * 3.2 * 9.81 + 0.02 * v * v) / 12.0).min(1.0);
            ScenarioConfig {
                cruise_speed_mps: v,
                cruise_throttle: throttle,
                start_distance_m: (4.0f64).max(3.0 * v),
                ..base.clone()
            }
        },
        |v, records| {
            (
                v,
                vec![
                    completed_metric(records, |r| r.total_delay_ms().map(|x| x as f64)),
                    completed_metric(records, |r| r.braking_distance_m()),
                    completed_metric(records, |r| r.halt_distance_to_camera_m),
                ],
            )
        },
    );
    SweepTable {
        parameter: "speed m/s".to_owned(),
        columns: vec![
            "total (ms)".to_owned(),
            "braking (m)".to_owned(),
            "halt margin (m)".to_owned(),
        ],
        rows,
    }
}

/// Sweeps NTP synchronisation quality: measured (cross-clock) interval
/// variance grows with the offset spread while true latency is unchanged.
pub fn sweep_ntp_quality(
    exec: &impl Executor,
    base: &ScenarioConfig,
    offset_std_us: &[f64],
    runs: usize,
) -> SweepTable {
    let rows = sweep_rows(
        exec,
        offset_std_us,
        runs,
        |std_us| ScenarioConfig {
            ntp: NtpModel {
                offset_std_us: std_us,
                offset_cap_us: 4.0 * std_us + 1.0,
                drift_std_ppm: base.ntp.drift_std_ppm,
            },
            ..base.clone()
        },
        |std_us, records| {
            let hops: Vec<f64> = records
                .iter()
                .filter_map(|r| r.interval_3_4_ms().map(|x| x as f64))
                .collect();
            (
                std_us,
                vec![
                    if hops.is_empty() {
                        f64::NAN
                    } else {
                        mean(&hops)
                    },
                    if hops.is_empty() {
                        f64::NAN
                    } else {
                        variance(&hops)
                    },
                ],
            )
        },
    );
    SweepTable {
        parameter: "ntp offset µs".to_owned(),
        columns: vec!["#3->#4 mean (ms)".to_owned(), "#3->#4 var".to_owned()],
        rows,
    }
}

/// Sweeps the transmit power: DENM delivery ratio and completion rate
/// collapse below the link budget (§IV-C's call to "properly model
/// attenuation" — here the knob is on the transmitter instead).
pub fn sweep_tx_power(
    exec: &impl Executor,
    base: &ScenarioConfig,
    dbm_values: &[f64],
    runs: usize,
) -> SweepTable {
    let rows = sweep_rows(
        exec,
        dbm_values,
        runs,
        |dbm| {
            let mut channel = base.channel.clone();
            channel.tx_power_dbm = dbm;
            ScenarioConfig {
                channel,
                ..base.clone()
            }
        },
        |dbm, records| {
            let delivered = records.iter().filter(|r| r.denm_delivered).count();
            let completed = records.iter().filter(|r| r.completed()).count();
            (
                dbm,
                vec![
                    delivered as f64 / runs as f64,
                    completed as f64 / runs as f64,
                ],
            )
        },
    );
    SweepTable {
        parameter: "tx power dBm".to_owned(),
        columns: vec!["DENM delivery".to_owned(), "stop completed".to_owned()],
        rows,
    }
}

/// Sweeps the log-normal shadowing σ: heavier fading widens the delivery
/// distribution without moving the mean link budget.
pub fn sweep_shadowing(
    exec: &impl Executor,
    base: &ScenarioConfig,
    sigma_db: &[f64],
    runs: usize,
) -> SweepTable {
    let rows = sweep_rows(
        exec,
        sigma_db,
        runs,
        |sigma| {
            let mut channel = base.channel.clone();
            channel.shadowing_sigma_db = sigma;
            // Put the link near its margin so shadowing matters: a weak
            // transmitter at lab distances.
            channel.tx_power_dbm = -32.0;
            ScenarioConfig {
                channel,
                ..base.clone()
            }
        },
        |sigma, records| {
            let delivered = records.iter().filter(|r| r.denm_delivered).count();
            (sigma, vec![delivered as f64 / runs as f64])
        },
    );
    SweepTable {
        parameter: "shadowing σ dB".to_owned(),
        columns: vec!["DENM delivery".to_owned()],
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Runner;

    fn base() -> ScenarioConfig {
        ScenarioConfig {
            seed: 5000,
            ..ScenarioConfig::default()
        }
    }

    fn exec() -> Runner {
        Runner::from_env()
    }

    #[test]
    fn poll_period_sweep_monotone() {
        let t = sweep_poll_period(&exec(), &base(), &[10, 50, 150], 8);
        let col = t.column("#4->#5 (ms)");
        assert!(col[0] < col[1] && col[1] < col[2], "{col:?}");
        assert!(t.render().contains("poll period"));
    }

    #[test]
    fn fps_sweep_shrinks_detection_gap() {
        let t = sweep_camera_fps(&exec(), &base(), &[2.0, 8.0], 8);
        let gap = t.column("#1->#2 gap (ms)");
        assert!(gap[0] > gap[1], "{gap:?}");
    }

    #[test]
    fn action_point_sweep_margin_grows_with_distance() {
        let t = sweep_action_point(&exec(), &base(), &[1.0, 1.52, 2.2], 8);
        let margin = t.column("halt margin (m)");
        assert!(
            margin[0] < margin[2],
            "earlier warning leaves more margin: {margin:?}"
        );
    }

    #[test]
    fn speed_sweep_braking_superlinear() {
        let t = sweep_speed(&exec(), &base(), &[1.0, 2.0], 8);
        let braking = t.column("braking (m)");
        assert!(
            braking[1] > 1.7 * braking[0],
            "doubling speed should far more than double braking: {braking:?}"
        );
    }

    #[test]
    fn ntp_sweep_variance_grows() {
        let t = sweep_ntp_quality(&exec(), &base(), &[0.0, 10_000.0], 12);
        let var = t.column("#3->#4 var");
        assert!(var[1] > var[0], "{var:?}");
    }

    #[test]
    fn tx_power_sweep_shows_link_budget_cliff() {
        let t = sweep_tx_power(&exec(), &base(), &[-45.0, 23.0], 10);
        let delivery = t.column("DENM delivery");
        assert!(delivery[0] < 0.5, "starved link fails: {delivery:?}");
        assert!(delivery[1] > 0.9, "nominal power delivers: {delivery:?}");
    }

    #[test]
    fn shadowing_sweep_softens_the_cliff() {
        // At the margin power, zero shadowing is deterministic (all-or-
        // nothing); heavy shadowing spreads delivery into a fraction.
        let t = sweep_shadowing(&exec(), &base(), &[0.0, 12.0], 16);
        let delivery = t.column("DENM delivery");
        for d in &delivery {
            assert!((0.0..=1.0).contains(d));
        }
        // σ=0 must be at an extreme; σ=12 strictly between the extremes
        // or at least different.
        assert!(delivery[0] <= 0.0 || delivery[0] >= 1.0, "{delivery:?}");
        assert_ne!(delivery[0], delivery[1], "{delivery:?}");
    }

    #[test]
    fn sweeps_identical_across_executors() {
        let serial = sweep_poll_period(&crate::campaign::Serial, &base(), &[10, 150], 4);
        let threaded = sweep_poll_period(&Runner::new(8), &base(), &[10, 150], 4);
        assert_eq!(serial, threaded);
    }

    #[test]
    fn zero_runs_still_renders_rows() {
        let t = sweep_poll_period(&exec(), &base(), &[10, 50], 0);
        assert_eq!(t.rows.len(), 2);
        assert!(t.rows.iter().all(|(_, vals)| vals[0].is_nan()));
    }

    #[test]
    #[should_panic(expected = "unknown sweep column")]
    fn unknown_column_panics() {
        let t = sweep_poll_period(&exec(), &base(), &[50], 2);
        let _ = t.column("nope");
    }
}
