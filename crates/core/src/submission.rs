//! Versioned binary codec for campaign *submissions* (DESIGN.md §14).
//!
//! A submission is what a client POSTs to the campaign server: the
//! [`CampaignRegistry`](crate::campaign::CampaignRegistry) name of the
//! campaign to run, the shape the client expects that campaign to have
//! (its [`SeedSchedule`] and total flat run count), and the client's
//! [`grid_fingerprint`](crate::campaign::grid_fingerprint) of the
//! derived grid. Server and client share the registry *code*, so the
//! request never serialises a `ScenarioConfig` — it names a derivation
//! and proves both sides derived the same thing, exactly like the shard
//! worker handshake (DESIGN.md §10).
//!
//! # Frame layout (version 1)
//!
//! ```text
//! [0..4)  magic           "CSUB"
//! u8      version         (SUBMISSION_VERSION = 1)
//! u32+…   campaign        name length + UTF-8 bytes
//! u8      seeds tag       0 = Consecutive, 1 = Offset (+ u64 offset)
//! u64     runs            expected total flat runs of the grid
//! u64     grid_fp         expected grid fingerprint
//! ```
//!
//! Decoding is strict: bad magic, unknown version, unknown schedule
//! tags, non-UTF-8 names, and trailing bytes are all typed errors —
//! never panics. Like [`crate::wire`], version bumps only ever append
//! fields; the codec lives in its own module so the `wire.schema`
//! append-only snapshot of the run-record layout is untouched by
//! submission changes.

use crate::campaign::{grid_fingerprint, CampaignSpec, SeedSchedule};
use geonet::bytesio::{ByteReader, ByteWriterExt};

/// Current submission codec version; bumped on any layout change
/// (append-only, like [`crate::wire::WIRE_VERSION`]).
pub const SUBMISSION_VERSION: u8 = 1;

/// Oldest version [`decode_submission`] still accepts.
pub const MIN_SUBMISSION_VERSION: u8 = 1;

/// Submission frame magic.
const SUBMISSION_MAGIC: &[u8; 4] = b"CSUB";

/// Seed-schedule tag bytes (wire values, never reordered).
const SEEDS_CONSECUTIVE: u8 = 0;
const SEEDS_OFFSET: u8 = 1;

/// One campaign submission: *which* registered campaign to run, and the
/// shape the client expects it to have.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignSubmission {
    /// Registry name of the campaign.
    pub campaign: String,
    /// Seed schedule the client expects the grid's first spec to use
    /// ([`SeedSchedule::Consecutive`] for an empty grid).
    pub seeds: SeedSchedule,
    /// Total flat runs the client expects across the whole grid.
    pub runs: u64,
    /// The client's fingerprint of the derived grid — the handshake the
    /// server answers 409 Conflict to when its own derivation differs.
    pub grid_fp: u64,
}

impl CampaignSubmission {
    /// Builds the submission a client sends for `campaign`, deriving the
    /// expected shape and fingerprint from its own copy of the grid.
    pub fn for_grid(campaign: &str, grid: &[CampaignSpec]) -> Self {
        Self {
            campaign: campaign.to_owned(),
            seeds: grid
                .first()
                .map(|s| s.seeds)
                .unwrap_or(SeedSchedule::Consecutive),
            runs: grid.iter().map(|s| s.runs as u64).sum(),
            grid_fp: grid_fingerprint(grid),
        }
    }

    /// Whether a server-side derivation matches this submission's
    /// expected shape and fingerprint.
    pub fn matches(&self, grid: &[CampaignSpec]) -> bool {
        let expected = Self::for_grid(&self.campaign, grid);
        *self == expected
    }
}

/// Error produced when decoding a submission frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmissionError {
    /// The buffer ended before the frame was complete.
    Truncated {
        /// Bytes needed by the failed read.
        needed: usize,
        /// Bytes actually remaining.
        remaining: usize,
    },
    /// The frame does not start with the submission magic.
    BadMagic,
    /// The version byte names a layout this build does not know.
    UnsupportedVersion(u8),
    /// The seed-schedule tag byte is unknown.
    BadScheduleTag(u8),
    /// The campaign name is not valid UTF-8.
    BadUtf8,
    /// Bytes left over after the declared structure.
    TrailingBytes(usize),
}

impl std::fmt::Display for SubmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmissionError::Truncated { needed, remaining } => write!(
                f,
                "truncated submission frame: needed {needed} bytes, {remaining} remaining"
            ),
            SubmissionError::BadMagic => write!(f, "bad submission magic"),
            SubmissionError::UnsupportedVersion(v) => {
                write!(f, "unsupported submission version {v}")
            }
            SubmissionError::BadScheduleTag(t) => write!(f, "unknown seed-schedule tag {t:#x}"),
            SubmissionError::BadUtf8 => write!(f, "campaign name is not valid UTF-8"),
            SubmissionError::TrailingBytes(n) => write!(f, "{n} trailing bytes after submission"),
        }
    }
}

impl std::error::Error for SubmissionError {}

impl From<geonet::GeonetError> for SubmissionError {
    fn from(e: geonet::GeonetError) -> Self {
        match e {
            geonet::GeonetError::Truncated { needed, remaining } => {
                SubmissionError::Truncated { needed, remaining }
            }
            // ByteReader only ever reports truncation; the arm exists
            // because GeonetError is non_exhaustive.
            _ => SubmissionError::Truncated {
                needed: 0,
                remaining: 0,
            },
        }
    }
}

/// Encodes a submission as one version-1 frame.
pub fn encode_submission(sub: &CampaignSubmission) -> Vec<u8> {
    let mut out = Vec::with_capacity(32 + sub.campaign.len());
    out.extend_from_slice(SUBMISSION_MAGIC);
    out.put_u8(SUBMISSION_VERSION);
    out.put_u32(sub.campaign.len() as u32);
    out.extend_from_slice(sub.campaign.as_bytes());
    match sub.seeds {
        SeedSchedule::Consecutive => out.put_u8(SEEDS_CONSECUTIVE),
        SeedSchedule::Offset(offset) => {
            out.put_u8(SEEDS_OFFSET);
            out.put_u64(offset);
        }
    }
    out.put_u64(sub.runs);
    out.put_u64(sub.grid_fp);
    out
}

/// Decodes one submission frame that must span the whole buffer exactly.
///
/// # Errors
///
/// Returns a [`SubmissionError`] for truncated, malformed, or
/// unknown-version frames; never panics on arbitrary input.
pub fn decode_submission(bytes: &[u8]) -> Result<CampaignSubmission, SubmissionError> {
    let mut r = ByteReader::new(bytes);
    if r.take(4)? != SUBMISSION_MAGIC {
        return Err(SubmissionError::BadMagic);
    }
    let version = r.u8()?;
    if !(MIN_SUBMISSION_VERSION..=SUBMISSION_VERSION).contains(&version) {
        return Err(SubmissionError::UnsupportedVersion(version));
    }
    let name_len = r.u32()? as usize;
    let campaign =
        String::from_utf8(r.take(name_len)?.to_vec()).map_err(|_| SubmissionError::BadUtf8)?;
    let seeds = match r.u8()? {
        SEEDS_CONSECUTIVE => SeedSchedule::Consecutive,
        SEEDS_OFFSET => SeedSchedule::Offset(r.u64()?),
        t => return Err(SubmissionError::BadScheduleTag(t)),
    };
    let runs = r.u64()?;
    let grid_fp = r.u64()?;
    if r.remaining() != 0 {
        return Err(SubmissionError::TrailingBytes(r.remaining()));
    }
    Ok(CampaignSubmission {
        campaign,
        seeds,
        runs,
        grid_fp,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioConfig;
    use proptest::prelude::*;

    fn demo_grid() -> Vec<CampaignSpec> {
        vec![
            CampaignSpec::with_seed_offset(ScenarioConfig::default(), 1000, 3),
            CampaignSpec::new(ScenarioConfig::default(), 2),
        ]
    }

    #[test]
    fn for_grid_captures_shape_and_fingerprint() {
        let grid = demo_grid();
        let sub = CampaignSubmission::for_grid("table3", &grid);
        assert_eq!(sub.campaign, "table3");
        assert_eq!(sub.seeds, SeedSchedule::Offset(1000));
        assert_eq!(sub.runs, 5);
        assert_eq!(sub.grid_fp, grid_fingerprint(&grid));
        assert!(sub.matches(&grid));
        assert!(!sub.matches(&grid[..1]));
        let empty = CampaignSubmission::for_grid("empty", &[]);
        assert_eq!(empty.seeds, SeedSchedule::Consecutive);
        assert_eq!(empty.runs, 0);
    }

    #[test]
    fn roundtrips_both_schedules() {
        for seeds in [SeedSchedule::Consecutive, SeedSchedule::Offset(9000)] {
            let sub = CampaignSubmission {
                campaign: "city_sweep".to_owned(),
                seeds,
                runs: 42,
                grid_fp: 0xDEAD_BEEF_CAFE_F00D,
            };
            assert_eq!(decode_submission(&encode_submission(&sub)), Ok(sub));
        }
    }

    #[test]
    fn rejects_bad_magic_version_tag_and_trailing() {
        let sub = CampaignSubmission {
            campaign: "x".to_owned(),
            seeds: SeedSchedule::Consecutive,
            runs: 1,
            grid_fp: 7,
        };
        let good = encode_submission(&sub);

        let mut bad = good.clone();
        bad[0] = b'X';
        assert_eq!(decode_submission(&bad), Err(SubmissionError::BadMagic));

        let mut bad = good.clone();
        bad[4] = 99;
        assert_eq!(
            decode_submission(&bad),
            Err(SubmissionError::UnsupportedVersion(99))
        );
        bad[4] = 0; // version 0 never shipped
        assert_eq!(
            decode_submission(&bad),
            Err(SubmissionError::UnsupportedVersion(0))
        );

        let mut bad = good.clone();
        // Schedule tag sits right after the 1-byte name.
        bad[4 + 1 + 4 + 1] = 9;
        assert_eq!(
            decode_submission(&bad),
            Err(SubmissionError::BadScheduleTag(9))
        );

        let mut padded = good.clone();
        padded.push(0);
        assert_eq!(
            decode_submission(&padded),
            Err(SubmissionError::TrailingBytes(1))
        );
    }

    #[test]
    fn every_strict_prefix_fails_cleanly() {
        let sub = CampaignSubmission::for_grid("table2", &demo_grid());
        let bytes = encode_submission(&sub);
        for cut in 0..bytes.len() {
            assert!(decode_submission(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    proptest! {
        #[test]
        fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
            let _ = decode_submission(&bytes);
        }

        #[test]
        fn corrupted_byte_never_panics(flip in 0usize..64, xor in 1u8..=255) {
            let mut bytes = encode_submission(&CampaignSubmission::for_grid("t", &demo_grid()));
            let flip = flip % bytes.len();
            bytes[flip] ^= xor;
            // Either a clean error or a decode of a different submission —
            // never a panic.
            let _ = decode_submission(&bytes);
        }

        #[test]
        fn arbitrary_submissions_roundtrip(
            name in "\\PC{0,24}",
            offset in proptest::option::of(any::<u64>()),
            runs in any::<u64>(),
            fp in any::<u64>(),
        ) {
            let sub = CampaignSubmission {
                campaign: name,
                seeds: offset.map_or(SeedSchedule::Consecutive, SeedSchedule::Offset),
                runs,
                grid_fp: fp,
            };
            prop_assert_eq!(decode_submission(&encode_submission(&sub)), Ok(sub));
        }
    }
}
