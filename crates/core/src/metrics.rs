//! Statistics for the experiment harness: empirical distribution
//! functions (Figure 11), summary statistics (Tables II/III), and the
//! distribution fitting the paper's future work calls for ("possibly
//! model it with an appropriate distribution so that it can be used by
//! the community").

/// An empirical distribution function over latency (or any scalar)
/// samples.
///
/// # Example
///
/// ```
/// use its_testbed::metrics::Edf;
///
/// let edf = Edf::from_samples(vec![71.0, 70.0, 52.0, 44.0, 55.0]);
/// assert_eq!(edf.len(), 5);
/// // 60% of the paper's samples lie at or below 55 ms.
/// assert!((edf.fraction_at_or_below(55.0) - 0.6).abs() < 1e-12);
/// assert_eq!(edf.quantile(0.0), 44.0);
/// assert_eq!(edf.quantile(1.0), 71.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Edf {
    sorted: Vec<f64>,
}

impl Edf {
    /// Builds an EDF from samples (NaNs are rejected).
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or contains NaN.
    pub fn from_samples(mut samples: Vec<f64>) -> Self {
        assert!(!samples.is_empty(), "EDF needs at least one sample");
        assert!(
            samples.iter().all(|s| !s.is_nan()),
            "EDF samples must not be NaN"
        );
        samples.sort_by(|a, b| a.total_cmp(b));
        Self { sorted: samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the EDF is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The sorted samples.
    pub fn samples(&self) -> &[f64] {
        &self.sorted
    }

    /// F(x): fraction of samples ≤ `x`.
    pub fn fraction_at_or_below(&self, x: f64) -> f64 {
        let count = self.sorted.partition_point(|&s| s <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// The q-quantile (nearest-rank), `q ∈ [0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile q must be in [0, 1]");
        if q <= 0.0 {
            return self.sorted[0];
        }
        let rank = (q * self.sorted.len() as f64).ceil() as usize;
        self.sorted[rank.clamp(1, self.sorted.len()) - 1]
    }

    /// Sample mean.
    pub fn mean(&self) -> f64 {
        self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
    }

    /// Population variance (divide by n, like the paper's 0.0022 figure).
    pub fn variance(&self) -> f64 {
        let m = self.mean();
        self.sorted.iter().map(|x| (x - m).powi(2)).sum::<f64>() / self.sorted.len() as f64
    }

    /// Minimum sample.
    pub fn min(&self) -> f64 {
        // detlint:allow(S3) sorted is non-empty by construction at every call site
        self.sorted[0]
    }

    /// Maximum sample.
    pub fn max(&self) -> f64 {
        // detlint:allow(S3) sorted is non-empty by construction at every call site
        *self.sorted.last().expect("non-empty by construction")
    }

    /// Renders the EDF step points as `(x, F(x))` pairs, one per unique
    /// sample — the data behind a Figure 11-style plot.
    pub fn step_points(&self) -> Vec<(f64, f64)> {
        let mut points = Vec::new();
        let n = self.sorted.len() as f64;
        let mut i = 0;
        while i < self.sorted.len() {
            let x = self.sorted[i];
            let mut j = i;
            while j < self.sorted.len() && self.sorted[j] == x {
                j += 1;
            }
            points.push((x, j as f64 / n));
            i = j;
        }
        points
    }
}

/// A fitted normal distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NormalFit {
    /// Mean.
    pub mean: f64,
    /// Standard deviation.
    pub std_dev: f64,
}

/// A fitted shifted-exponential distribution
/// `F(x) = 1 − exp(−(x − shift)/scale)` for `x ≥ shift`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShiftedExponentialFit {
    /// Location (minimum latency floor).
    pub shift: f64,
    /// Scale (mean excess over the floor).
    pub scale: f64,
}

/// Fits a normal distribution by moments.
pub fn fit_normal(edf: &Edf) -> NormalFit {
    NormalFit {
        mean: edf.mean(),
        std_dev: edf.variance().sqrt(),
    }
}

/// Fits a shifted exponential: shift = min, scale = mean − min.
pub fn fit_shifted_exponential(edf: &Edf) -> ShiftedExponentialFit {
    let shift = edf.min();
    ShiftedExponentialFit {
        shift,
        scale: (edf.mean() - shift).max(f64::MIN_POSITIVE),
    }
}

impl NormalFit {
    /// CDF of the fit at `x`.
    pub fn cdf(&self, x: f64) -> f64 {
        if self.std_dev <= 0.0 {
            return if x >= self.mean { 1.0 } else { 0.0 };
        }
        0.5 * sim_core::math::erfc(-(x - self.mean) / (self.std_dev * std::f64::consts::SQRT_2))
    }
}

impl ShiftedExponentialFit {
    /// CDF of the fit at `x`.
    pub fn cdf(&self, x: f64) -> f64 {
        if x < self.shift {
            0.0
        } else {
            1.0 - (-(x - self.shift) / self.scale).exp()
        }
    }
}

/// Kolmogorov–Smirnov statistic of a fitted CDF against the EDF.
pub fn ks_statistic(edf: &Edf, cdf: impl Fn(f64) -> f64) -> f64 {
    let n = edf.len() as f64;
    let mut d: f64 = 0.0;
    for (i, &x) in edf.samples().iter().enumerate() {
        let f = cdf(x);
        let lo = i as f64 / n;
        let hi = (i + 1) as f64 / n;
        d = d.max((f - lo).abs()).max((hi - f).abs());
    }
    d
}

/// Mean of a slice (convenience for the tables).
///
/// # Panics
///
/// Panics if `xs` is empty.
pub fn mean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "mean of empty slice");
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance of a slice.
///
/// # Panics
///
/// Panics if `xs` is empty.
pub fn variance(xs: &[f64]) -> f64 {
    let m = mean(xs);
    xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64
}

/// A two-sided bootstrap confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Lower bound.
    pub low: f64,
    /// Point estimate (the statistic on the original sample).
    pub estimate: f64,
    /// Upper bound.
    pub high: f64,
}

impl ConfidenceInterval {
    /// Whether the interval contains `x`.
    pub fn contains(&self, x: f64) -> bool {
        (self.low..=self.high).contains(&x)
    }
}

/// Percentile-bootstrap confidence interval for an arbitrary statistic
/// of the EDF's samples. Deterministic given the seed (uses [`SimRng`]).
///
/// The paper reports five-run averages with no error bars; with a
/// simulated testbed we can put uncertainty on every number.
///
/// # Panics
///
/// Panics if `level` is outside `(0, 1)` or `resamples` is zero.
///
/// # Example
///
/// ```
/// use its_testbed::metrics::{bootstrap_ci, mean, Edf};
///
/// let edf = Edf::from_samples(vec![71.0, 70.0, 52.0, 44.0, 55.0]);
/// let ci = bootstrap_ci(&edf, mean, 0.95, 2000, 7);
/// assert!(ci.contains(58.4), "paper mean inside the CI");
/// assert!(ci.low < ci.estimate && ci.estimate < ci.high);
/// ```
pub fn bootstrap_ci(
    edf: &Edf,
    statistic: fn(&[f64]) -> f64,
    level: f64,
    resamples: usize,
    seed: u64,
) -> ConfidenceInterval {
    assert!((0.0..1.0).contains(&level) && level > 0.0, "level in (0,1)");
    assert!(resamples > 0, "need at least one resample");
    let samples = edf.samples();
    let mut rng = sim_core::SimRng::seed_from(seed);
    let mut stats = Vec::with_capacity(resamples);
    // One scratch buffer reused across all resamples.
    let mut scratch = vec![0.0; samples.len()];
    for _ in 0..resamples {
        for slot in scratch.iter_mut() {
            *slot = samples[rng.below(samples.len() as u64) as usize];
        }
        stats.push(statistic(&scratch));
    }
    // Only two order statistics are needed, so two O(n) selections
    // replace a full sort. `total_cmp` is a total order, which makes the
    // i-th order statistic a unique value — identical to what indexing
    // the fully sorted vector would return.
    let alpha = (1.0 - level) / 2.0;
    let order_index = |q: f64| ((q * resamples as f64).floor() as usize).min(resamples - 1);
    let lo_i = order_index(alpha);
    let hi_i = order_index(1.0 - alpha);
    let (_, &mut low, upper) = stats.select_nth_unstable_by(lo_i, f64::total_cmp);
    let high = if hi_i > lo_i {
        let (_, &mut h, _) = upper.select_nth_unstable_by(hi_i - lo_i - 1, f64::total_cmp);
        h
    } else {
        low
    };
    ConfidenceInterval {
        low,
        estimate: statistic(samples),
        high,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// The paper's five total-delay samples (Table II bottom row).
    const PAPER_TOTALS: [f64; 5] = [71.0, 70.0, 52.0, 44.0, 55.0];

    #[test]
    fn paper_edf_reproduces_figure_11_claims() {
        let edf = Edf::from_samples(PAPER_TOTALS.to_vec());
        // "60% of the samples occur between 44 and 55 ms"
        assert!((edf.fraction_at_or_below(55.0) - 0.6).abs() < 1e-12);
        // "the remaining 40% occur between 70 and 71 ms"
        assert!((edf.fraction_at_or_below(69.9) - 0.6).abs() < 1e-12);
        assert_eq!(edf.fraction_at_or_below(71.0), 1.0);
        // Average 58.4 ms (Table II).
        assert!((edf.mean() - 58.4).abs() < 1e-9);
        assert_eq!(edf.max(), 71.0);
        assert!(edf.max() < 100.0, "paper: never exceeds 100 ms");
    }

    #[test]
    fn table_iii_variance() {
        let braking = [0.43, 0.37, 0.31, 0.42, 0.31, 0.36, 0.36];
        // "on average 36 centimeters with a variance of 0.0022"
        assert!((mean(&braking) - 0.3657).abs() < 0.001);
        assert!((variance(&braking) - 0.0019).abs() < 0.0005);
    }

    #[test]
    fn quantiles() {
        let edf = Edf::from_samples(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(edf.quantile(0.25), 1.0);
        assert_eq!(edf.quantile(0.5), 2.0);
        assert_eq!(edf.quantile(1.0), 4.0);
        assert_eq!(edf.quantile(0.0), 1.0);
    }

    #[test]
    fn step_points_dedupe_ties() {
        let edf = Edf::from_samples(vec![2.0, 1.0, 2.0]);
        assert_eq!(edf.step_points(), vec![(1.0, 1.0 / 3.0), (2.0, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn empty_edf_panics() {
        let _ = Edf::from_samples(vec![]);
    }

    #[test]
    #[should_panic(expected = "must not be NaN")]
    fn nan_rejected() {
        let _ = Edf::from_samples(vec![1.0, f64::NAN]);
    }

    #[test]
    fn normal_fit_and_cdf() {
        let edf = Edf::from_samples(PAPER_TOTALS.to_vec());
        let fit = fit_normal(&edf);
        assert!((fit.mean - 58.4).abs() < 1e-9);
        assert!((fit.cdf(fit.mean) - 0.5).abs() < 1e-6);
        assert!(fit.cdf(200.0) > 0.999);
        assert!(fit.cdf(0.0) < 0.001);
    }

    #[test]
    fn shifted_exponential_fit() {
        let edf = Edf::from_samples(PAPER_TOTALS.to_vec());
        let fit = fit_shifted_exponential(&edf);
        assert_eq!(fit.shift, 44.0);
        assert!((fit.scale - 14.4).abs() < 1e-9);
        assert_eq!(fit.cdf(43.0), 0.0);
        assert!((fit.cdf(44.0 + 14.4) - (1.0 - (-1.0f64).exp())).abs() < 1e-9);
    }

    #[test]
    fn ks_statistic_smaller_for_better_fit() {
        // Samples genuinely from a shifted exponential should be fit
        // better by the exponential than by a degenerate-width normal.
        let samples: Vec<f64> = (1..=200)
            .map(|i| {
                let u = f64::from(i) / 201.0;
                10.0 + -5.0 * (1.0 - u).ln()
            })
            .collect();
        let edf = Edf::from_samples(samples);
        let exp_fit = fit_shifted_exponential(&edf);
        let d_exp = ks_statistic(&edf, |x| exp_fit.cdf(x));
        assert!(d_exp < 0.12, "exp fit KS {d_exp}");
    }

    #[test]
    fn bootstrap_ci_brackets_the_estimate() {
        let edf = Edf::from_samples(PAPER_TOTALS.to_vec());
        let ci = bootstrap_ci(&edf, mean, 0.95, 4000, 1);
        assert!(ci.low <= ci.estimate && ci.estimate <= ci.high);
        assert!((ci.estimate - 58.4).abs() < 1e-9);
        // Five samples spanning 44–71: the CI must be wide.
        assert!(ci.high - ci.low > 10.0, "{ci:?}");
        assert!(ci.contains(58.4));
        assert!(!ci.contains(200.0));
    }

    #[test]
    fn bootstrap_ci_narrows_with_sample_size() {
        // Same spread, 20× the samples: the mean's CI shrinks.
        let small = Edf::from_samples(PAPER_TOTALS.to_vec());
        let big = Edf::from_samples(
            PAPER_TOTALS
                .iter()
                .cycle()
                .take(100)
                .copied()
                .collect::<Vec<_>>(),
        );
        let ci_small = bootstrap_ci(&small, mean, 0.95, 2000, 2);
        let ci_big = bootstrap_ci(&big, mean, 0.95, 2000, 2);
        assert!(
            ci_big.high - ci_big.low < (ci_small.high - ci_small.low) / 2.0,
            "{ci_small:?} vs {ci_big:?}"
        );
    }

    #[test]
    fn bootstrap_ci_deterministic_per_seed() {
        let edf = Edf::from_samples(PAPER_TOTALS.to_vec());
        assert_eq!(
            bootstrap_ci(&edf, mean, 0.9, 500, 3),
            bootstrap_ci(&edf, mean, 0.9, 500, 3)
        );
    }

    proptest! {
        #[test]
        fn edf_is_monotone_nondecreasing(samples in proptest::collection::vec(0.0f64..1000.0, 1..100)) {
            let edf = Edf::from_samples(samples);
            let points = edf.step_points();
            let mut prev = 0.0;
            for (x, f) in points {
                prop_assert!(f >= prev);
                prop_assert!((0.0..=1.0).contains(&f));
                prop_assert!(edf.fraction_at_or_below(x) == f);
                prev = f;
            }
            prop_assert_eq!(edf.fraction_at_or_below(f64::INFINITY), 1.0);
        }

        #[test]
        fn mean_between_min_and_max(samples in proptest::collection::vec(-100.0f64..100.0, 1..50)) {
            let edf = Edf::from_samples(samples);
            prop_assert!(edf.mean() >= edf.min() - 1e-9);
            prop_assert!(edf.mean() <= edf.max() + 1e-9);
        }
    }
}
