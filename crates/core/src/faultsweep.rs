//! Fault-sweep campaign: a grid over fault class × intensity, run
//! through the generic [`Executor`] interface (DESIGN.md §11).
//!
//! Each grid cell is one [`CampaignSpec`]: the baseline collision
//! avoidance scenario plus a [`FaultPlan`] exercising exactly one fault
//! class at one intensity, with the vehicle's V2X heartbeat watchdog
//! enabled so degraded runs end in a measurable outcome (pipeline
//! completion, fail-safe stop, or overrun) instead of the give-up
//! timeout. Cell aggregation is plain arithmetic over the returned
//! records, so Serial, the thread [`crate::Runner`] and the
//! multi-process shard coordinator all render byte-identical tables —
//! [`FaultSweep::fingerprint`] pins that equality in tier-1 tests.

use crate::campaign::{CampaignSpec, Executor};
use crate::scenario::{RunRecord, ScenarioConfig};
use faults::{FaultKind, FaultNode, FaultPlan, FaultWindow};
use sim_core::{SimTime, Trace};
use vehicle::watchdog::WatchdogConfig;

/// The fault classes the sweep exercises, one per grid row group.
pub const FAULT_CLASSES: [&str; 6] = [
    "camera_frame_drop",
    "detector_miss",
    "radio_silence",
    "bit_corruption",
    "http_stall",
    "node_crash_obu",
];

/// The intensity ladder applied to every class.
pub const INTENSITIES: [f64; 3] = [0.25, 0.5, 1.0];

/// Node-targeted fault classes for the cooperative scenarios
/// (DESIGN.md §15). [`plan_for`] understands these in addition to
/// [`FAULT_CLASSES`]; they are kept out of the classic collision
/// avoidance grid because they name nodes that scenario does not have
/// (platoon members) or silence deterministically rather than
/// stochastically.
pub const NODE_FAULT_CLASSES: [&str; 3] = ["leader_silence", "member_crash", "rsu_silence"];

/// One aggregated grid cell: a fault class at one intensity.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSweepRow {
    /// Fault class name (one of [`FAULT_CLASSES`]).
    pub class: String,
    /// Intensity in `[0, 1]` (probability, or scaled crash/corruption
    /// parameter — see [`plan_for`]).
    pub intensity: f64,
    /// Runs in the cell.
    pub runs: usize,
    /// Runs whose DENM reached the OBU.
    pub delivered: usize,
    /// Runs that completed the paper's emergency pipeline end to end.
    pub completed: usize,
    /// Runs ending in a watchdog-commanded fail-safe stop.
    pub failsafe_stops: usize,
    /// Runs where the vehicle overran the camera (collision outcome).
    pub overruns: usize,
    /// Mean fault activations per run.
    pub injected_avg: f64,
    /// Mean corrupted frames/payloads rejected by the real decoders.
    pub rejected_avg: f64,
    /// Total watchdog degradations (speed caps + stops) across the cell.
    pub watchdog_trips: u64,
    /// Total watchdog recoveries back to nominal across the cell.
    pub watchdog_recoveries: u64,
}

/// The aggregated fault-sweep table.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSweep {
    /// One row per (class, intensity) cell, grid order.
    pub rows: Vec<FaultSweepRow>,
}

/// The [`FaultPlan`] of one grid cell. Intensity maps to the class's
/// natural parameter: a per-opportunity probability for the stochastic
/// classes, a scaled per-byte flip probability for corruption (an
/// intensity of 1.0 flips ~2 % of bytes — enough to mangle most frames
/// without turning every run into pure noise), and a crash-window
/// length for the OBU crash (intensity × 2 s starting at t = 1 s, which
/// brackets the detection instant of the baseline scenario).
pub fn plan_for(class: &str, intensity: f64) -> FaultPlan {
    let kind = match class {
        "camera_frame_drop" => FaultKind::CameraFrameDrop { prob: intensity },
        "detector_miss" => FaultKind::DetectorMiss { prob: intensity },
        "radio_silence" => FaultKind::RadioSilence { prob: intensity },
        "bit_corruption" => FaultKind::BitCorruption {
            per_byte_prob: intensity * 0.02,
        },
        "http_stall" => FaultKind::HttpStall { prob: intensity },
        "node_crash_obu" => {
            let len_ms = (intensity * 2000.0) as u64;
            return FaultPlan::new(vec![FaultKind::NodeCrash {
                node: FaultNode::Obu,
            }
            .during(FaultWindow::new(
                SimTime::from_secs(1),
                SimTime::from_millis(1000 + len_ms),
            ))]);
        }
        // Node-targeted classes (NODE_FAULT_CLASSES): intensity scales
        // the outage window, starting at t = 0 so the fault covers both
        // the DENM instant and the start of the heartbeat relay.
        "leader_silence" => {
            let len_ms = (intensity * 40_000.0) as u64;
            return FaultPlan::new(vec![FaultKind::StuckTransmitter {
                node: FaultNode::Platoon(0),
            }
            .during(FaultWindow::new(
                SimTime::ZERO,
                SimTime::from_millis(len_ms),
            ))]);
        }
        "member_crash" => {
            let len_ms = (intensity * 40_000.0) as u64;
            return FaultPlan::new(vec![FaultKind::NodeCrash {
                node: FaultNode::Platoon(1),
            }
            .during(FaultWindow::new(
                SimTime::ZERO,
                SimTime::from_millis(len_ms),
            ))]);
        }
        "rsu_silence" => {
            let len_ms = (intensity * 4000.0) as u64;
            return FaultPlan::new(vec![FaultKind::StuckTransmitter {
                node: FaultNode::Rsu,
            }
            .during(FaultWindow::new(
                SimTime::ZERO,
                SimTime::from_millis(len_ms),
            ))]);
        }
        other => panic!("unknown fault class {other}"),
    };
    FaultPlan::new(vec![kind.during(FaultWindow::always())])
}

/// The campaign grid: one [`CampaignSpec`] of `runs` consecutive seeds
/// per (class, intensity) cell, every cell with the watchdog enabled.
///
/// Pure in its inputs, so a shard worker re-deriving the grid from the
/// same base config reaches the same fingerprints as the coordinator.
pub fn fault_sweep_specs(base: &ScenarioConfig, runs: usize) -> Vec<CampaignSpec> {
    let mut specs = Vec::with_capacity(FAULT_CLASSES.len() * INTENSITIES.len());
    for class in FAULT_CLASSES {
        for intensity in INTENSITIES {
            let cfg = ScenarioConfig {
                fault_plan: plan_for(class, intensity),
                watchdog: Some(WatchdogConfig::default()),
                ..base.clone()
            };
            specs.push(CampaignSpec::new(cfg, runs));
        }
    }
    specs
}

fn aggregate(class: &str, intensity: f64, records: &[RunRecord]) -> FaultSweepRow {
    let n = records.len().max(1) as f64;
    FaultSweepRow {
        class: class.to_owned(),
        intensity,
        runs: records.len(),
        delivered: records.iter().filter(|r| r.denm_delivered).count(),
        completed: records.iter().filter(|r| r.completed()).count(),
        failsafe_stops: records.iter().filter(|r| r.fault.failsafe_stop).count(),
        overruns: records.iter().filter(|r| r.fault.overran_camera).count(),
        injected_avg: records.iter().map(|r| r.fault.injected as f64).sum::<f64>() / n,
        rejected_avg: records
            .iter()
            .map(|r| r.fault.corrupted_rejected as f64)
            .sum::<f64>()
            / n,
        watchdog_trips: records
            .iter()
            .map(|r| r.fault.watchdog_speed_caps + r.fault.watchdog_stops)
            .sum(),
        watchdog_recoveries: records.iter().map(|r| r.fault.watchdog_recoveries).sum(),
    }
}

/// Runs the full fault-sweep grid on `exec` with `runs` seeds per cell.
pub fn fault_sweep(exec: &impl Executor, base: &ScenarioConfig, runs: usize) -> FaultSweep {
    let specs = fault_sweep_specs(base, runs);
    let results = exec.execute_grid(&specs);
    let mut rows = Vec::with_capacity(specs.len());
    let mut it = results.iter();
    for class in FAULT_CLASSES {
        for intensity in INTENSITIES {
            let records = it.next().expect("one result per spec");
            rows.push(aggregate(class, intensity, records));
        }
    }
    FaultSweep { rows }
}

impl FaultSweep {
    /// Renders the sweep as an aligned text table. The formatting is
    /// fixed-precision, so byte-equal tables ⇔ byte-equal aggregates.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{:<18} {:>5} {:>5} {:>5} {:>5} {:>5} {:>5} {:>9} {:>9} {:>6} {:>6}\n",
            "fault class",
            "inten",
            "runs",
            "deliv",
            "compl",
            "fstop",
            "overr",
            "inj/run",
            "rej/run",
            "trips",
            "recov",
        );
        for r in &self.rows {
            out.push_str(&format!(
                "{:<18} {:>5.2} {:>5} {:>5} {:>5} {:>5} {:>5} {:>9.3} {:>9.3} {:>6} {:>6}\n",
                r.class,
                r.intensity,
                r.runs,
                r.delivered,
                r.completed,
                r.failsafe_stops,
                r.overruns,
                r.injected_avg,
                r.rejected_avg,
                r.watchdog_trips,
                r.watchdog_recoveries,
            ));
        }
        out
    }

    /// FNV-1a digest of the rendered table (the same construction as
    /// [`sim_core::Trace::digest`]): the cross-executor identity check.
    pub fn fingerprint(&self) -> u64 {
        let mut t = Trace::new();
        t.record(SimTime::ZERO, "faultsweep", "table", &self.render());
        t.digest()
    }

    /// The row for `(class, intensity)`.
    ///
    /// # Panics
    ///
    /// Panics if the cell is not in the grid.
    pub fn cell(&self, class: &str, intensity: f64) -> &FaultSweepRow {
        self.rows
            .iter()
            .find(|r| r.class == class && r.intensity == intensity)
            .unwrap_or_else(|| panic!("no cell {class} @ {intensity}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Serial;

    fn base() -> ScenarioConfig {
        ScenarioConfig {
            seed: 7000,
            ..ScenarioConfig::default()
        }
    }

    #[test]
    fn grid_covers_every_class_and_intensity() {
        let specs = fault_sweep_specs(&base(), 2);
        assert_eq!(specs.len(), FAULT_CLASSES.len() * INTENSITIES.len());
        for spec in &specs {
            assert!(!spec.base.fault_plan.is_empty());
            assert!(spec.base.watchdog.is_some());
        }
    }

    #[test]
    fn sweep_degrades_with_intensity_and_stays_deterministic() {
        let sweep = fault_sweep(&Serial, &base(), 3);
        // Total radio silence: nothing is delivered, and the watchdog
        // must catch every run (fail-safe stop, not overrun).
        let silent = sweep.cell("radio_silence", 1.0);
        assert_eq!(silent.delivered, 0);
        assert_eq!(silent.completed, 0);
        assert_eq!(silent.failsafe_stops, silent.runs);
        assert_eq!(silent.overruns, 0);
        // Low-intensity camera drops barely dent the pipeline.
        let mild = sweep.cell("camera_frame_drop", 0.25);
        assert!(mild.completed > 0);
        // Determinism: the exact same table again.
        let again = fault_sweep(&Serial, &base(), 3);
        assert_eq!(sweep, again);
        assert_eq!(sweep.fingerprint(), again.fingerprint());
    }

    #[test]
    #[should_panic(expected = "unknown fault class")]
    fn unknown_class_panics() {
        let _ = plan_for("gremlins", 0.5);
    }

    #[test]
    fn node_targeted_classes_produce_windowed_plans() {
        for class in NODE_FAULT_CLASSES {
            for intensity in INTENSITIES {
                let plan = plan_for(class, intensity);
                assert!(!plan.is_empty(), "{class} @ {intensity}");
            }
            // Node-targeted outages are deterministic: the injector
            // never draws, so two evaluations agree exactly.
            let a = plan_for(class, 0.5);
            let b = plan_for(class, 0.5);
            assert_eq!(a.faults.len(), b.faults.len());
        }
    }
}
