//! The paper's intended use-case (Figure 1): **two** vehicles meet at a
//! blind-corner intersection.
//!
//! A protagonist vehicle (ETSI ITS-capable, broadcasting CAMs) approaches
//! on one leg; a non-ETSI road user approaches on the crossing leg.
//! Neither has visual or wireless line of sight to the other. The
//! road-side camera watches the road user's leg; when it enters the
//! region of interest the Hazard Advertisement Service *correlates the
//! detection with the protagonist's CAM track in the LDM*, predicts a
//! conflict at the crossing, and issues the DENM that stops the
//! protagonist. (The paper's experiment used a single vehicle in both
//! roles "for convenience"; this module implements the full two-vehicle
//! arrangement.)

use facilities::cpm::{CpService, CpServiceConfig, Cpm, CpmPerceivedObject, ObjectClass};
use facilities::ldm::PerceivedObject;
use faults::{FaultInjector, FaultNode, FaultPlan, FaultStats};
use its_messages::common::{ReferencePosition, StationType};
use openc2x::node::{lab_to_geo, ItsStation, PollingModel, StationConfig};
use perception::camera::{GroundTruthTarget, RoadSideCamera, TargetAppearance};
use perception::detector::YoloModel;
use phy80211p::channel::{Channel, ChannelConfig, Obstacle};
use phy80211p::edca::Medium;
use phy80211p::ofdm::airtime;
use phy80211p::Position2D;
use sim_core::{
    run_batched, EventHandler, EventQueue, NodeClock, NtpModel, SimDuration, SimRng, SimTime, Trace,
};
use vehicle::dynamics::{LongitudinalModel, VehicleParams};
use vehicle::planner::{MotionPlanner, StopPolicy};

use its_messages::common::StationId;

/// Geographic anchor of the intersection (the conflict point).
const GEO_ORIGIN: (f64, f64) = (41.178, -8.608);

/// A second, simultaneous hazard: a stalled obstacle on the
/// protagonist's exit leg, just past the blind corner. The road-side
/// camera sees it from the start; the protagonist's own forward sensor
/// only picks it up once the corner building no longer occludes it —
/// far inside its braking distance. Only cooperative perception (the
/// RSU's CPMs) warns the protagonist early enough to stop clear.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SecondHazard {
    /// Obstacle position past the conflict point along the
    /// protagonist's leg, m.
    pub past_crossing_m: f64,
    /// Range of the protagonist's own forward sensing once it rounds
    /// the corner, m. Deliberately shorter than a braking distance:
    /// the blind corner is what makes the hazard a hazard.
    pub own_sensor_range_m: f64,
    /// Distance at which the protagonist brakes for an obstacle it
    /// knows about through a CPM, m.
    pub coop_brake_range_m: f64,
}

impl Default for SecondHazard {
    fn default() -> Self {
        Self {
            past_crossing_m: 1.0,
            own_sensor_range_m: 0.4,
            coop_brake_range_m: 2.5,
        }
    }
}

/// Configuration of the two-vehicle intersection scenario.
#[derive(Debug, Clone)]
pub struct IntersectionConfig {
    /// RNG seed.
    pub seed: u64,
    /// Protagonist's approach speed, m/s.
    pub protagonist_speed_mps: f64,
    /// Protagonist's start distance from the conflict point, m.
    pub protagonist_start_m: f64,
    /// Road user's speed, m/s (it never brakes — it is not ETSI-capable).
    pub road_user_speed_mps: f64,
    /// Road user's start distance from the conflict point, m.
    pub road_user_start_m: f64,
    /// Camera's Action Point on the road user's leg, m from the
    /// conflict point.
    pub action_point_m: f64,
    /// Predicted-conflict window: a DENM is sent when the two predicted
    /// arrival times at the crossing differ by less than this, s.
    pub conflict_window_s: f64,
    /// Separation below which the run counts as a collision, m
    /// (half-lengths of two 1/10-scale cars).
    pub collision_distance_m: f64,
    /// Whether the road-side infrastructure is present (ablation:
    /// without it the protagonist sails through).
    pub with_infrastructure: bool,
    /// Extra attenuation of the corner building (blocks the diagonal).
    pub corner_loss_db: f64,
    /// Camera model (watching the road user's leg).
    pub camera: RoadSideCamera,
    /// Detector model.
    pub yolo: YoloModel,
    /// Vehicle-side polling model.
    pub polling: PollingModel,
    /// NTP model for the hosts.
    pub ntp: NtpModel,
    /// Vehicle dynamics (both vehicles).
    pub vehicle: VehicleParams,
    /// Control-loop period.
    pub control_period: SimDuration,
    /// Give-up horizon.
    pub timeout: SimDuration,
    /// Fault schedule for the run. The default (empty) plan is a
    /// strict no-op: the injector draws no randomness and changes no
    /// control flow, so faultless runs stay byte-identical.
    pub fault_plan: FaultPlan,
    /// Collective perception: `Some` makes the RSU package its camera
    /// detections as CPMs that extend the protagonist's LDM beyond its
    /// own sensors; `None` (the default) leaves the baseline event
    /// schedule and RNG sequence untouched.
    pub cpm: Option<CpServiceConfig>,
    /// The blind-corner second hazard. `None` (the default) keeps the
    /// classic single-hazard geometry.
    pub second_hazard: Option<SecondHazard>,
}

impl Default for IntersectionConfig {
    fn default() -> Self {
        Self {
            seed: 1,
            protagonist_speed_mps: 1.5,
            protagonist_start_m: 6.0,
            road_user_speed_mps: 1.5,
            road_user_start_m: 6.0,
            action_point_m: 4.0,
            conflict_window_s: 1.5,
            collision_distance_m: 0.5,
            with_infrastructure: true,
            corner_loss_db: 40.0,
            camera: RoadSideCamera {
                max_range_m: 8.0,
                ..RoadSideCamera::default()
            },
            yolo: YoloModel::default(),
            polling: PollingModel::default(),
            ntp: NtpModel::default(),
            vehicle: VehicleParams::default(),
            control_period: SimDuration::from_millis(20),
            timeout: SimDuration::from_secs(30),
            fault_plan: FaultPlan::default(),
            cpm: None,
            second_hazard: None,
        }
    }
}

/// Outcome of one intersection run.
#[derive(Debug, Clone, Default)]
pub struct IntersectionRecord {
    /// Whether the hazard service sent a DENM.
    pub denm_sent: bool,
    /// Whether it reached the protagonist's OBU.
    pub denm_delivered: bool,
    /// When the protagonist's power was commanded off.
    pub actuation: Option<SimTime>,
    /// Whether the protagonist came to a stop before the crossing.
    pub protagonist_stopped: bool,
    /// Protagonist's halt distance from the conflict point, m (negative
    /// = it entered the crossing).
    pub halt_margin_m: Option<f64>,
    /// Minimum separation between the two vehicles over the run, m.
    pub min_separation_m: f64,
    /// Whether the run ended in a collision.
    pub collision: bool,
    /// CPMs the RSU generated.
    pub cpm_sent: u64,
    /// CPMs the protagonist's OBU decoded.
    pub cpm_delivered: u64,
    /// Perceived objects that entered the protagonist's LDM via CPM
    /// while beyond its own sensor range — the cooperative-perception
    /// payoff counter.
    pub cpm_extended_detections: u64,
    /// The protagonist braked for the second hazard.
    pub second_hazard_braked: bool,
    /// That braking decision came from a CPM-known obstacle, not the
    /// protagonist's own (too-late) sensor.
    pub second_hazard_via_cpm: bool,
    /// Fault-injection counters for the run.
    pub fault: FaultStats,
    /// Event trace.
    pub trace: Trace,
}

/// Events of the intersection scenario.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum Event {
    /// Physics + CAM tick for both vehicles.
    ControlTick,
    /// Camera frame on the road user's leg.
    CameraFrame,
    /// YOLO output reaches the hazard service.
    DetectionOutput {
        /// Estimated distance of the road user from the conflict point.
        estimated_distance_m: f64,
    },
    /// Edge → RSU trigger POST arrives.
    TriggerArrives,
    /// DENM frame arrives at the protagonist's OBU.
    ObuRx,
    /// Protagonist's polling loop fires.
    VehiclePoll,
    /// Poll response reaches the control logic: cut power.
    PowerCut,
    /// A CPM frame arrives at the protagonist's OBU.
    CpmRx {
        /// UPER bytes of the CPM (possibly corrupted on the air).
        bytes: Vec<u8>,
    },
}

/// The assembled intersection scenario.
pub struct IntersectionScenario {
    config: IntersectionConfig,
    rng: SimRng,
    channel: Channel,
    medium: Medium,
    rsu: ItsStation,
    obu: ItsStation,
    ecu_clock: NodeClock,
    protagonist: LongitudinalModel,
    road_user: LongitudinalModel,
    planner: MotionPlanner,
    throttle_on: bool,
    denm_pending: bool,
    denm_triggered: bool,
    poll_phase: SimDuration,
    // Fault plane + cooperative perception.
    injector: FaultInjector,
    cp: Option<CpService>,
    rsu_ref: ReferencePosition,
    rsu_obstacle_est: Option<f64>,
    obstacle_known: Option<SimTime>,
    record: IntersectionRecord,
    done: bool,
}

impl std::fmt::Debug for IntersectionScenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IntersectionScenario")
            .field("seed", &self.config.seed)
            .finish()
    }
}

impl IntersectionScenario {
    /// Builds the scenario.
    pub fn new(config: IntersectionConfig) -> Self {
        let root = SimRng::seed_from(config.seed);
        let mut rng_clocks = root.fork("clocks");
        let rsu_clock = NodeClock::sample(&config.ntp, &mut rng_clocks, 0);
        let obu_clock = NodeClock::sample(&config.ntp, &mut rng_clocks, 0);
        let ecu_clock = NodeClock::sample(&config.ntp, &mut rng_clocks, 0);

        let mut rsu = ItsStation::new(
            StationConfig::rsu(StationId::new(15).expect("static id")), // detlint:allow(S3) static id 15 is always in the station-id range
            rsu_clock,
        );
        // The RSU hangs over the corner with LoS down both legs.
        rsu.set_position(Position2D::new(-1.0, -1.0));
        let mut obu = ItsStation::new(
            StationConfig::obu(StationId::new(7).expect("static id")), // detlint:allow(S3) static id 7 is always in the station-id range
            obu_clock,
        );
        obu.set_position(Position2D::new(config.protagonist_start_m, 0.0));

        let mut channel_cfg = ChannelConfig::default();
        // The corner building occupies the inner quadrant between the
        // two legs; it blocks the diagonal but not leg↔RSU.
        channel_cfg.obstacles.push(Obstacle {
            min: Position2D::new(0.5, 0.5),
            max: Position2D::new(50.0, 50.0),
            extra_loss_db: config.corner_loss_db,
        });

        let mut rng = root.fork("run");
        let poll_phase =
            SimDuration::from_secs_f64(rng.f64() * config.polling.period.as_secs_f64());
        let mut protagonist = LongitudinalModel::new(config.vehicle);
        protagonist.set_speed(config.protagonist_speed_mps);
        let mut road_user = LongitudinalModel::new(config.vehicle);
        road_user.set_speed(config.road_user_speed_mps);

        // Forking is draw-free on the parent, so carving out the fault
        // stream leaves the legacy "clocks"/"run" sequences untouched —
        // the empty-plan no-op invariant.
        let injector = FaultInjector::new(config.fault_plan.clone(), root.fork("faults"));
        let cp = config.cpm.map(|cfg| {
            CpService::new(
                StationId::new(15).expect("static id"), // detlint:allow(S3) static id 15 is always in the station-id range
                StationType::RoadSideUnit,
                cfg,
            )
        });
        let (rsu_lat, rsu_lon) = lab_to_geo(GEO_ORIGIN, rsu.position());
        let rsu_ref = ReferencePosition::from_degrees(rsu_lat, rsu_lon);

        Self {
            channel: Channel::new(channel_cfg),
            medium: Medium::new(),
            rsu,
            obu,
            ecu_clock,
            protagonist,
            road_user,
            planner: MotionPlanner::new(0.214, StopPolicy::AnyDenm),
            throttle_on: true,
            denm_pending: false,
            denm_triggered: false,
            poll_phase,
            injector,
            cp,
            rsu_ref,
            rsu_obstacle_est: None,
            obstacle_known: None,
            record: IntersectionRecord {
                min_separation_m: f64::INFINITY,
                ..IntersectionRecord::default()
            },
            done: false,
            rng,
            config,
        }
    }

    /// Protagonist's distance to the conflict point (can go negative
    /// once it enters the crossing). It approaches along +x.
    fn protagonist_distance(&self) -> f64 {
        self.config.protagonist_start_m - self.protagonist.distance_m()
    }

    /// Road user's distance to the conflict point (approaches along +y).
    fn road_user_distance(&self) -> f64 {
        self.config.road_user_start_m - self.road_user.distance_m()
    }

    fn protagonist_position(&self) -> Position2D {
        Position2D::new(self.protagonist_distance(), 0.0)
    }

    fn road_user_position(&self) -> Position2D {
        Position2D::new(0.0, self.road_user_distance())
    }

    /// Runs the scenario and returns the outcome.
    pub fn run(mut self) -> IntersectionRecord {
        let mut queue: EventQueue<Event> = EventQueue::new();
        queue.schedule_at(SimTime::ZERO, Event::ControlTick);
        if self.config.with_infrastructure {
            queue.schedule_at(
                self.config.camera.next_frame_completion(SimTime::ZERO),
                Event::CameraFrame,
            );
            queue.schedule_at(
                self.config
                    .polling
                    .next_poll(SimTime::ZERO, self.poll_phase),
                Event::VehiclePoll,
            );
        }
        let timeout = SimTime::ZERO + self.config.timeout;
        // Same-instant events dispatch as one batch; order is identical
        // to the serial loop (see `sim_core::run_batched`).
        let mut batch = Vec::with_capacity(8);
        run_batched(&mut self, &mut queue, timeout, &mut batch);
        self.record.fault = self.injector.stats();
        self.record
    }

    fn on_control_tick(&mut self, now: SimTime, queue: &mut EventQueue<Event>) {
        let dt = self.config.control_period.as_secs_f64();
        let throttle = if self.throttle_on { 0.214 } else { 0.0 };
        self.protagonist.step(dt, throttle);
        self.road_user.step(dt, 0.214);

        // Track separation and collisions.
        let sep = self
            .protagonist_position()
            .distance(self.road_user_position());
        if sep < self.record.min_separation_m {
            self.record.min_separation_m = sep;
        }
        if sep <= self.config.collision_distance_m && !self.record.collision {
            self.record.collision = true;
            self.record.trace.record_fmt(
                now,
                "world",
                "collision",
                format_args!("separation {sep:.2} m"),
            );
        }

        // Protagonist halted after a power cut?
        if !self.throttle_on
            && self.protagonist.speed_mps() <= 0.0
            && !self.record.protagonist_stopped
        {
            self.record.protagonist_stopped = true;
            self.record.halt_margin_m = Some(self.protagonist_distance());
            self.record.trace.record_fmt(
                now,
                "world",
                "halt",
                format_args!("margin {:.2} m", self.protagonist_distance()),
            );
        }

        // Second hazard: the stalled obstacle past the corner. The
        // protagonist brakes early for a CPM-known obstacle, late (and
        // usually too late) on its own corner-occluded sensor.
        if let Some(h) = self.config.second_hazard {
            let gap = self.protagonist_distance() + h.past_crossing_m;
            if self.throttle_on {
                let via_own = gap <= h.own_sensor_range_m;
                let via_cpm = self.obstacle_known.is_some() && gap <= h.coop_brake_range_m;
                if via_own || via_cpm {
                    self.throttle_on = false;
                    self.planner.force_stop();
                    self.record.second_hazard_braked = true;
                    self.record.second_hazard_via_cpm = via_cpm && !via_own;
                    self.record.trace.record_fmt(
                        now,
                        "ecu",
                        "obstacle_brake",
                        format_args!(
                            "gap {gap:.2} m via {}",
                            if via_cpm && !via_own {
                                "cpm"
                            } else {
                                "own sensor"
                            }
                        ),
                    );
                }
            }
            if gap <= self.config.collision_distance_m && !self.record.collision {
                self.record.collision = true;
                self.record.trace.record_fmt(
                    now,
                    "world",
                    "collision",
                    format_args!("obstacle gap {gap:.2} m"),
                );
            }
        }

        // End when the road user has cleared the crossing and either the
        // protagonist stopped or also cleared it.
        let ru_cleared = self.road_user_distance() < -2.0;
        let pr_done = self.record.protagonist_stopped || self.protagonist_distance() < -2.0;
        if ru_cleared && pr_done {
            self.done = true;
            return;
        }

        // Protagonist CAM beaconing feeds the RSU's LDM.
        self.obu.set_position(self.protagonist_position());
        self.obu.set_motion(self.protagonist.speed_mps(), 270.0);
        if self.config.with_infrastructure {
            if let Ok(Some(cam_packet)) = self.obu.poll_cam(now) {
                // Fault plane: a silenced OBU transmitter (or crashed
                // OBU) keeps the CAM off the air; the CA service already
                // consumed its cadence, so the next CAM is unaffected.
                let lost = self.injector.node_down(now, FaultNode::Obu)
                    || self.injector.radio_drop(now, FaultNode::Obu);
                if !lost {
                    let bytes = cam_packet.to_bytes();
                    let start =
                        self.obu
                            .channel_access(now, &cam_packet, &self.medium, &mut self.rng);
                    let at = airtime(bytes.len(), self.obu.config().data_rate);
                    self.medium.occupy(start + at);
                    let outcome = self.channel.transmit(
                        start,
                        self.obu.position(),
                        self.rsu.position(),
                        bytes.len(),
                        self.obu.config().data_rate,
                        &mut self.rng,
                    );
                    if outcome.delivered && !self.injector.node_down(now, FaultNode::Rsu) {
                        // Bit corruption mutates the on-air frame; the
                        // real GeoNetworking decoder rejects (or
                        // survives) the result.
                        let wire = match self.injector.corrupt_frame(now, &bytes) {
                            Some(corrupted) => corrupted,
                            None => bytes,
                        };
                        // Lab-scale link to the LoS RSU: deliver directly.
                        match geonet::GnPacket::from_bytes(&wire) {
                            Ok(packet) => {
                                self.rsu.on_packet(outcome.arrival.max(now), &packet);
                            }
                            Err(_) => self.injector.note_rejected(),
                        }
                    }
                }
            }
        }

        if !self.done {
            queue.schedule_after(now, self.config.control_period, Event::ControlTick);
        }
    }

    fn on_camera_frame(&mut self, now: SimTime, queue: &mut EventQueue<Event>) {
        // Fault plane: a crashed edge host or a dropped frame skips this
        // period's processing entirely; the camera cadence is untouched.
        let frame_lost =
            self.injector.node_down(now, FaultNode::Edge) || self.injector.drop_camera_frame(now);
        // The camera watches the road user's leg (+y).
        let distance = self.road_user_distance();
        let mut road_user_seen = false;
        if !frame_lost && distance > 0.0 {
            let target = GroundTruthTarget {
                id: 2,
                distance_m: distance,
                bearing_deg: 0.0,
                appearance: TargetAppearance::WithStopSign,
            };
            if self.config.camera.sees(&target) {
                road_user_seen = true;
                let inference = self.rng.normal(0.18, 0.02).clamp(0.05, 0.249);
                let detections = self.config.yolo.process_frame(
                    now,
                    std::slice::from_ref(&target),
                    &mut self.rng,
                );
                if let Some(d) = detections.first() {
                    // Detector-miss faults discard the output *after*
                    // the legacy RNG draws, so the faultless sequence is
                    // untouched.
                    if !self.injector.drop_detection(now) {
                        queue.schedule_after(
                            now,
                            SimDuration::from_secs_f64(inference),
                            Event::DetectionOutput {
                                estimated_distance_m: d.estimated_distance_m,
                            },
                        );
                    }
                }
            }
        }
        if !frame_lost {
            // A hallucinated detection feeds the hazard service a target
            // that is not there (drawn from the injector's own stream).
            if let Some((phantom_m, _confidence)) = self.injector.phantom_detection(now) {
                queue.schedule_after(
                    now,
                    SimDuration::from_millis(180),
                    Event::DetectionOutput {
                        estimated_distance_m: phantom_m,
                    },
                );
            }
            self.generate_cpm(now, road_user_seen, distance, queue);
        }
        if !self.done {
            queue.schedule_at(
                self.config.camera.next_frame_completion(now),
                Event::CameraFrame,
            );
        }
    }

    /// Collective perception: the RSU packages what its camera currently
    /// sees as a CPM and broadcasts it toward the protagonist. Object
    /// geometry is the ground truth the camera model already vetted, so
    /// building the message draws no randomness — with `cpm: None`
    /// (the default) this method returns before touching `self.rng` and
    /// the legacy event/RNG sequence is byte-identical.
    fn generate_cpm(
        &mut self,
        now: SimTime,
        road_user_seen: bool,
        road_user_distance: f64,
        queue: &mut EventQueue<Event>,
    ) {
        let Some(cp) = self.cp.as_mut() else {
            return;
        };
        let rsu_pos = self.rsu.position();
        let mut objects = Vec::with_capacity(2);
        if road_user_seen {
            objects.push(CpmPerceivedObject::from_planar(
                2,
                0.0 - rsu_pos.x,
                road_user_distance - rsu_pos.y,
                ObjectClass::Person,
                85,
            ));
        }
        if let Some(h) = self.config.second_hazard {
            // The stalled obstacle on the protagonist's exit leg; the
            // elevated camera always has line of sight to it.
            objects.push(CpmPerceivedObject::from_planar(
                3,
                -h.past_crossing_m - rsu_pos.x,
                0.0 - rsu_pos.y,
                ObjectClass::Obstacle,
                92,
            ));
        }
        let Some(cpm) = cp.poll(now, self.rsu_ref, &objects) else {
            return;
        };
        let Ok(bytes) = cpm.to_bytes() else {
            return; // from_planar saturates, so the encode cannot fail
        };
        self.record.cpm_sent += 1;
        // Fault plane: a crashed or silenced RSU keeps the CPM off the
        // air (the CP service already consumed its cadence).
        if self.injector.node_down(now, FaultNode::Rsu)
            || self.injector.radio_drop(now, FaultNode::Rsu)
        {
            return;
        }
        let outcome = self.channel.transmit(
            now,
            rsu_pos,
            self.obu.position(),
            bytes.len(),
            self.rsu.config().data_rate,
            &mut self.rng,
        );
        if outcome.delivered {
            let wire = match self.injector.corrupt_frame(now, &bytes) {
                Some(corrupted) => corrupted,
                None => bytes,
            };
            queue.schedule_at(outcome.arrival.max(now), Event::CpmRx { bytes: wire });
        }
    }

    /// A CPM frame reaches the protagonist's OBU: decode it and fold the
    /// carried objects into the OBU's LDM. Objects beyond the
    /// protagonist's own sensor reach are the cooperative-perception
    /// payoff; an `Obstacle`-class object arms the second-hazard brake.
    fn on_cpm_rx(&mut self, now: SimTime, bytes: &[u8]) {
        // A crashed OBU never decodes the frame.
        if self.injector.node_down(now, FaultNode::Obu) {
            return;
        }
        let cpm = match Cpm::from_bytes(bytes) {
            Ok(cpm) => cpm,
            Err(_) => {
                // Corrupted on the air and rejected by the real decoder.
                self.injector.note_rejected();
                return;
            }
        };
        self.record.cpm_delivered += 1;
        let own_range = self
            .config
            .second_hazard
            .map_or(0.0, |h| h.own_sensor_range_m);
        let rsu_pos = self.rsu.position();
        let protagonist = self.protagonist_position();
        for object in &cpm.perceived_objects {
            let (dx, dy) = object.offset_m();
            let lab = Position2D::new(rsu_pos.x + dx, rsu_pos.y + dy);
            let range_m = protagonist.distance(lab);
            let (lat, lon) = lab_to_geo(GEO_ORIGIN, lab);
            let class_label = match object.class {
                ObjectClass::Unknown => "unknown",
                ObjectClass::Vehicle => "vehicle",
                ObjectClass::Person => "person",
                ObjectClass::Obstacle => "obstacle",
            };
            self.obu.ldm_mut().insert_object(
                now,
                PerceivedObject {
                    id: u32::from(object.object_id),
                    position: ReferencePosition::from_degrees(lat, lon),
                    distance_m: range_m,
                    class_label,
                    confidence: f64::from(object.confidence_pct) / 100.0,
                },
            );
            if range_m > own_range {
                self.record.cpm_extended_detections += 1;
            }
            if object.class == ObjectClass::Obstacle && self.obstacle_known.is_none() {
                self.obstacle_known = Some(now);
                self.rsu_obstacle_est = Some(range_m);
                self.record.trace.record_fmt(
                    now,
                    "obu",
                    "cpm_obstacle",
                    format_args!("obstacle known via CPM at {range_m:.2} m"),
                );
            }
        }
    }

    fn on_detection_output(
        &mut self,
        now: SimTime,
        estimated_distance_m: f64,
        queue: &mut EventQueue<Event>,
    ) {
        if self.denm_triggered || estimated_distance_m > self.config.action_point_m {
            return;
        }
        // Conflict prediction: correlate the camera track with the
        // protagonist's CAM in the LDM.
        let (lat, lon) = lab_to_geo(GEO_ORIGIN, Position2D::new(0.0, 0.0));
        let conflict_point = ReferencePosition::from_degrees(lat, lon);
        let Some(protagonist_cam) = self
            .rsu
            .ldm()
            .stations_within(&conflict_point, 100.0)
            .first()
            .copied()
            .cloned()
        else {
            return; // no protagonist known: nothing to warn
        };
        let pr_position = protagonist_cam.basic.reference_position;
        let pr_distance = conflict_point.planar_distance_m(&pr_position);
        // Direction check: the warning only concerns a vehicle still
        // *approaching* the crossing. Compare the CAM heading with the
        // bearing from the vehicle to the conflict point.
        let approaching = {
            let (Some(lat_v), Some(lon_v), Some(lat_c), Some(lon_c)) = (
                pr_position.latitude.as_degrees(),
                pr_position.longitude.as_degrees(),
                conflict_point.latitude.as_degrees(),
                conflict_point.longitude.as_degrees(),
            ) else {
                return;
            };
            let east = (lon_c - lon_v) * lat_v.to_radians().cos();
            let north = lat_c - lat_v;
            // Bearing clockwise from North.
            let bearing = east.atan2(north).to_degrees().rem_euclid(360.0);
            let heading = protagonist_cam
                .high_frequency
                .heading
                .as_degrees()
                .unwrap_or(bearing);
            let diff = (bearing - heading).rem_euclid(360.0);
            diff.min(360.0 - diff) < 90.0
        };
        if !approaching {
            self.record.trace.record(
                now,
                "edge",
                "no_conflict",
                "protagonist already past the crossing",
            );
            return;
        }
        let pr_speed = protagonist_cam
            .high_frequency
            .speed
            .as_mps()
            .unwrap_or(0.0)
            .max(0.05);
        let t_protagonist = pr_distance / pr_speed;
        let t_road_user = estimated_distance_m / self.config.road_user_speed_mps.max(0.05);
        if (t_protagonist - t_road_user).abs() > self.config.conflict_window_s {
            self.record.trace.record_fmt(
                now,
                "edge",
                "no_conflict",
                format_args!("tA={t_protagonist:.2}s tB={t_road_user:.2}s"),
            );
            return;
        }
        self.denm_triggered = true;
        self.record.denm_sent = true;
        self.record.trace.record_fmt(
            now,
            "edge",
            "conflict",
            format_args!("tA={t_protagonist:.2}s tB={t_road_user:.2}s -> DENM"),
        );
        // Assessment + edge→RSU HTTP POST.
        let assess = self.rng.normal(0.003, 0.001).max(0.0005);
        let http = 0.012 + self.rng.exponential(0.009).min(0.027);
        queue.schedule_after(
            now,
            SimDuration::from_secs_f64(assess + http),
            Event::TriggerArrives,
        );
    }

    fn on_trigger_arrives(&mut self, now: SimTime, queue: &mut EventQueue<Event>) {
        let (lat, lon) = lab_to_geo(GEO_ORIGIN, Position2D::new(0.0, 0.0));
        let request = facilities::den::DenRequest::one_shot(
            self.rsu.wall(now),
            ReferencePosition::from_degrees(lat, lon),
            its_messages::cause_codes::CauseCode::CollisionRisk(
                its_messages::cause_codes::CollisionRiskSubCause::CrossingCollisionRisk,
            ),
        );
        self.rsu.trigger_denm(now, request);
        let build = SimDuration::from_secs_f64(self.rng.normal(0.002, 0.0005).max(0.0002));
        let handoff = now + build;
        let packets = match self.rsu.poll_denm(now) {
            Ok(p) => p,
            Err(_) => return,
        };
        for packet in packets {
            let bytes = packet.to_bytes();
            // Fault plane: a crashed or silenced RSU keeps the DENM off
            // the air entirely.
            if self.injector.node_down(handoff, FaultNode::Rsu)
                || self.injector.radio_drop(handoff, FaultNode::Rsu)
            {
                continue;
            }
            let start = self
                .rsu
                .channel_access(handoff, &packet, &self.medium, &mut self.rng);
            let at = airtime(bytes.len(), self.rsu.config().data_rate);
            self.medium.occupy(start + at);
            let outcome = self.channel.transmit(
                start,
                self.rsu.position(),
                self.obu.position(),
                bytes.len(),
                self.rsu.config().data_rate,
                &mut self.rng,
            );
            if outcome.delivered {
                // Bit corruption feeds the damaged frame through the
                // real GeoNetworking decoder; a reject drops the DENM.
                match self.injector.corrupt_frame(start, &bytes) {
                    Some(corrupted) => match geonet::GnPacket::from_bytes(&corrupted) {
                        Ok(_) => queue.schedule_at(outcome.arrival, Event::ObuRx),
                        Err(_) => self.injector.note_rejected(),
                    },
                    None => queue.schedule_at(outcome.arrival, Event::ObuRx),
                }
            }
        }
        self.record
            .trace
            .record(now, "rsu", "denm_tx", "collision risk");
    }

    fn on_obu_rx(&mut self, now: SimTime) {
        // A crashed OBU never takes delivery.
        if self.injector.node_down(now, FaultNode::Obu) {
            return;
        }
        if !self.record.denm_delivered {
            self.record.denm_delivered = true;
            self.record
                .trace
                .record(now, "obu", "denm_rx", "pending for poll");
        }
        self.denm_pending = true;
    }

    fn on_vehicle_poll(&mut self, now: SimTime, queue: &mut EventQueue<Event>) {
        if self.denm_pending && self.record.actuation.is_none() {
            self.denm_pending = false;
            let rtt = self
                .config
                .polling
                .sample_http_rtt(&mut self.rng)
                .min(self.config.polling.http_base * 4);
            // Fault plane: a stalled HTTP exchange costs one extra
            // polling period before the command lands.
            let stall = if self.injector.http_stall(now) {
                self.config.polling.period
            } else {
                SimDuration::from_nanos(0)
            };
            queue.schedule_after(now, rtt + stall, Event::PowerCut);
        }
        if !self.done && self.record.actuation.is_none() {
            queue.schedule_at(
                self.config
                    .polling
                    .next_poll(now + SimDuration::from_nanos(1), self.poll_phase),
                Event::VehiclePoll,
            );
        }
    }

    fn on_power_cut(&mut self, now: SimTime) {
        // A crashed ECU loses the power-cut command: the vehicle keeps
        // rolling — the catastrophic end of the degradation ladder.
        if self.injector.node_down(now, FaultNode::Ecu) {
            return;
        }
        if self.record.actuation.is_none() {
            self.record.actuation = Some(now);
            self.planner.force_stop();
            self.throttle_on = false;
            let _ = self.ecu_clock.wall_millis(now);
            self.record
                .trace
                .record(now, "ecu", "power_cut", "emergency brake");
        }
    }
}

impl EventHandler for IntersectionScenario {
    type Event = Event;

    fn handle(&mut self, now: SimTime, event: Event, queue: &mut EventQueue<Event>) {
        if self.done {
            return;
        }
        match event {
            Event::ControlTick => self.on_control_tick(now, queue),
            Event::CameraFrame => self.on_camera_frame(now, queue),
            Event::DetectionOutput {
                estimated_distance_m,
            } => self.on_detection_output(now, estimated_distance_m, queue),
            Event::TriggerArrives => self.on_trigger_arrives(now, queue),
            Event::ObuRx => self.on_obu_rx(now),
            Event::VehiclePoll => self.on_vehicle_poll(now, queue),
            Event::PowerCut => self.on_power_cut(now),
            Event::CpmRx { bytes } => self.on_cpm_rx(now, &bytes),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infrastructure_prevents_the_collision() {
        // Both vehicles timed to meet at the crossing.
        let with = IntersectionScenario::new(IntersectionConfig {
            seed: 1,
            ..IntersectionConfig::default()
        })
        .run();
        assert!(with.denm_sent, "conflict predicted");
        assert!(with.denm_delivered);
        assert!(with.protagonist_stopped, "{with:?}");
        assert!(!with.collision, "min separation {}", with.min_separation_m);
        assert!(with.halt_margin_m.unwrap() > 0.0, "stopped before the box");
    }

    #[test]
    fn without_infrastructure_the_vehicles_collide() {
        let without = IntersectionScenario::new(IntersectionConfig {
            seed: 1,
            with_infrastructure: false,
            ..IntersectionConfig::default()
        })
        .run();
        assert!(!without.denm_sent);
        assert!(!without.protagonist_stopped);
        assert!(
            without.collision,
            "min separation {}",
            without.min_separation_m
        );
    }

    #[test]
    fn no_denm_when_timings_do_not_conflict() {
        // The road user crosses long before the protagonist arrives.
        let record = IntersectionScenario::new(IntersectionConfig {
            seed: 2,
            protagonist_start_m: 12.0,
            road_user_start_m: 5.0,
            conflict_window_s: 0.8,
            ..IntersectionConfig::default()
        })
        .run();
        assert!(!record.denm_sent, "{record:?}");
        assert!(!record.collision, "they genuinely miss each other");
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = IntersectionConfig {
            seed: 5,
            ..IntersectionConfig::default()
        };
        let a = IntersectionScenario::new(cfg.clone()).run();
        let b = IntersectionScenario::new(cfg).run();
        assert_eq!(a.trace.digest(), b.trace.digest());
        assert_eq!(a.min_separation_m, b.min_separation_m);
    }

    #[test]
    fn trace_records_conflict_reasoning() {
        let record = IntersectionScenario::new(IntersectionConfig::default()).run();
        assert!(record.trace.first_of_kind("conflict").is_some());
        assert!(record.trace.first_of_kind("denm_tx").is_some());
        assert!(record.trace.first_of_kind("power_cut").is_some());
    }

    #[test]
    fn empty_fault_plan_is_a_strict_noop() {
        // The injector hooks and the CPM/second-hazard plumbing must
        // leave a default-config run byte-identical: same trace digest,
        // same outcome, zero fault activity.
        let cfg = IntersectionConfig {
            seed: 1,
            ..IntersectionConfig::default()
        };
        let record = IntersectionScenario::new(cfg).run();
        assert_eq!(record.fault, FaultStats::default());
        assert_eq!(record.cpm_sent, 0);
        assert_eq!(record.cpm_delivered, 0);
        assert!(!record.second_hazard_braked);
    }

    fn blind_corner_config(cpm_on: bool) -> IntersectionConfig {
        IntersectionConfig {
            seed: 1,
            // The road user crosses early so the classic conflict does
            // not fire; the second hazard is the only threat.
            protagonist_start_m: 12.0,
            road_user_start_m: 5.0,
            conflict_window_s: 0.8,
            second_hazard: Some(SecondHazard::default()),
            cpm: cpm_on.then(CpServiceConfig::default),
            ..IntersectionConfig::default()
        }
    }

    #[test]
    fn cpm_sees_the_second_hazard_the_own_sensor_misses() {
        let on = IntersectionScenario::new(blind_corner_config(true)).run();
        assert!(on.cpm_sent > 0, "{on:?}");
        assert!(on.cpm_delivered > 0, "{on:?}");
        assert!(on.cpm_extended_detections > 0, "{on:?}");
        assert!(on.second_hazard_braked, "{on:?}");
        assert!(on.second_hazard_via_cpm, "cpm warned before the corner");
        assert!(!on.collision, "{on:?}");

        let off = IntersectionScenario::new(blind_corner_config(false)).run();
        assert_eq!(off.cpm_sent, 0);
        assert_eq!(off.cpm_extended_detections, 0);
        assert!(!off.second_hazard_via_cpm, "no CPM, no cooperative warning");
        assert!(
            off.collision,
            "own sensing alone is too late past the blind corner: {off:?}"
        );
    }

    #[test]
    fn rsu_radio_silence_suppresses_the_denm() {
        use faults::{FaultKind, FaultSpec, FaultWindow};
        let record = IntersectionScenario::new(IntersectionConfig {
            seed: 1,
            fault_plan: FaultPlan::new(vec![FaultSpec {
                kind: FaultKind::StuckTransmitter {
                    node: FaultNode::Rsu,
                },
                window: FaultWindow::always(),
            }]),
            ..IntersectionConfig::default()
        })
        .run();
        assert!(record.denm_sent, "the edge still predicts the conflict");
        assert!(!record.denm_delivered, "but nothing leaves the RSU");
        assert!(record.collision, "{record:?}");
        assert!(record.fault.injected > 0);
    }

    #[test]
    fn obu_crash_ignores_a_delivered_cpm() {
        use faults::{FaultKind, FaultSpec, FaultWindow};
        let mut cfg = blind_corner_config(true);
        cfg.fault_plan = FaultPlan::new(vec![FaultSpec {
            kind: FaultKind::NodeCrash {
                node: FaultNode::Obu,
            },
            window: FaultWindow::always(),
        }]);
        let record = IntersectionScenario::new(cfg).run();
        assert_eq!(record.cpm_delivered, 0, "{record:?}");
        assert!(!record.second_hazard_via_cpm);
    }
}
