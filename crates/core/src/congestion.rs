//! Channel-congestion experiment: many CAM-beaconing stations on one
//! 802.11p channel, with the reactive DCC gatekeeper in the loop.
//!
//! The paper's laboratory has two radios and a quiet channel; its
//! platoon future work (§V) implies many. This experiment scales the
//! station count and measures what the access layer does: the channel
//! busy ratio, the DCC state the fleet settles into, and the per-station
//! CAM rate that actually reaches the air — the classic
//! beaconing-vs-congestion-control trade-off.

use crate::station::StationArena;
use its_messages::common::StationId;
use openc2x::node::{ItsStation, StationConfig};
use phy80211p::dcc::DccState;
use phy80211p::edca::Medium;
use phy80211p::ofdm::airtime;
use phy80211p::Position2D;
use sim_core::{NodeClock, NtpModel, SimDuration, SimRng, SimTime};

/// Configuration of the congestion experiment.
#[derive(Debug, Clone)]
pub struct CongestionConfig {
    /// RNG seed.
    pub seed: u64,
    /// Number of beaconing stations.
    pub n_stations: usize,
    /// Simulated duration.
    pub duration: SimDuration,
    /// Station poll period (how often each checks its CA service).
    pub poll_period: SimDuration,
    /// Stations drive in a loop so the CA position trigger keeps firing;
    /// this is their common speed, m/s.
    pub speed_mps: f64,
}

impl Default for CongestionConfig {
    fn default() -> Self {
        Self {
            seed: 1,
            n_stations: 10,
            duration: SimDuration::from_secs(20),
            poll_period: SimDuration::from_millis(20),
            speed_mps: 8.0,
        }
    }
}

/// Result of one congestion run.
#[derive(Debug, Clone, PartialEq)]
pub struct CongestionRecord {
    /// Stations in the run.
    pub n_stations: usize,
    /// CAMs that made it to the air, total.
    pub cams_transmitted: u64,
    /// Mean per-station CAM rate, Hz.
    pub cam_rate_hz: f64,
    /// Mean channel busy ratio over the run, derived from the actual
    /// airtime of every frame that reached the air.
    pub mean_cbr: f64,
    /// Total on-air time across the run, nanoseconds (the numerator of
    /// [`mean_cbr`](Self::mean_cbr)).
    pub airtime_on_air_ns: u64,
    /// The most restrictive DCC state any station reached.
    pub worst_dcc_state: DccState,
}

/// Runs the experiment: `n_stations` stations beacon CAMs with DCC in
/// the loop on a shared medium.
///
/// # Panics
///
/// Panics if the configuration has no stations.
pub fn run_congestion(config: &CongestionConfig) -> CongestionRecord {
    assert!(config.n_stations > 0, "need at least one station");
    let mut rng = SimRng::seed_from(config.seed);
    let mut medium = Medium::new();
    // Hot per-tick kinematic state lives in a structure-of-arrays arena;
    // the ItsStation objects carry the protocol stacks.
    let mut arena = StationArena::new(SimDuration::from_millis(100));
    let mut stations: Vec<ItsStation> = (0..config.n_stations)
        .map(|i| {
            let clock = NodeClock::sample(&NtpModel::default(), &mut rng, 0);
            let mut s = ItsStation::new(
                StationConfig::obu(StationId::new(100 + i as u32).expect("static id")),
                clock,
            );
            // Spread around a 100 m ring (all in radio range).
            let angle = std::f64::consts::TAU * i as f64 / config.n_stations as f64;
            let pos = Position2D::new(15.0 * angle.cos(), 15.0 * angle.sin());
            s.set_position(pos);
            arena.push_station(pos, angle.to_degrees(), config.speed_mps);
            s
        })
        .collect();

    let n = config.n_stations as f64;
    let mut cams_transmitted: u64 = 0;
    let mut busy_time_ns: u64 = 0;
    let mut on_air_ns_total: u64 = 0;
    let mut worst_state = DccState::Relaxed;
    let mut now = SimTime::ZERO;
    let end = SimTime::ZERO + config.duration;
    while now < end {
        // Kinematics: one contiguous pass over the arena's flat arrays
        // keeps every station "driving" so the CA position trigger
        // fires at the maximum rate the gatekeeper allows.
        let phase = config.speed_mps * now.as_secs_f64() / (std::f64::consts::TAU * 15.0);
        let (xs, ys) = arena.coords_mut();
        for (i, (x, y)) in xs.iter_mut().zip(ys.iter_mut()).enumerate() {
            let angle = std::f64::consts::TAU * (i as f64 / n + phase);
            *x = 15.0 * angle.cos();
            *y = 15.0 * angle.sin();
        }
        for (i, heading) in arena.headings_deg_mut().iter_mut().enumerate() {
            *heading = (std::f64::consts::TAU * (i as f64 / n + phase)).to_degrees();
        }
        for (i, station) in stations.iter_mut().enumerate() {
            let idx = i as u32;
            if let Some(pos) = arena.position_of(idx) {
                station.set_position(pos);
            }
            let heading = arena.headings_deg().get(i).copied().unwrap_or(0.0);
            station.set_motion(config.speed_mps, heading);
            if let Ok(Some(packet)) = station.poll_cam(now) {
                let bytes = packet.to_bytes();
                let at = airtime(bytes.len(), station.config().data_rate);
                medium.occupy(now + at);
                busy_time_ns += at.as_nanos();
                on_air_ns_total += at.as_nanos();
                cams_transmitted += 1;
            }
        }
        // All stations hear everything on the shared channel; feed the
        // busy observations and advance the DCC state machines once per
        // poll period (batched for speed).
        let window_busy = SimDuration::from_nanos(busy_time_ns_take(&mut busy_time_ns));
        for station in stations.iter_mut() {
            if !window_busy.is_zero() {
                station.observe_channel_busy(now, window_busy);
            } else {
                // Still roll the probe window so states can decay.
                station.observe_channel_busy(now, SimDuration::ZERO);
            }
            worst_state = worst_state.max(station.dcc().state());
        }
        now += config.poll_period;
    }

    // Mean CBR: the airtime every frame actually spent on the air over
    // the run duration. (An earlier version re-derived this from the
    // transmit counters times a representative 70-byte frame airtime,
    // which under-counted because real CAMs encode a larger payload;
    // `congestion_cbr_uses_actual_airtime` pins the honest version.)
    let total_airtime = SimDuration::from_nanos(on_air_ns_total).as_secs_f64();
    let mean_cbr = (total_airtime / config.duration.as_secs_f64()).min(1.0);
    let cam_rate_hz =
        cams_transmitted as f64 / config.n_stations as f64 / config.duration.as_secs_f64();

    CongestionRecord {
        n_stations: config.n_stations,
        cams_transmitted,
        cam_rate_hz,
        mean_cbr,
        airtime_on_air_ns: on_air_ns_total,
        worst_dcc_state: worst_state,
    }
}

/// Takes and clears the accumulated busy time.
fn busy_time_ns_take(acc: &mut u64) -> u64 {
    std::mem::take(acc)
}

/// Renders a station-count sweep as a table, one whole simulated fleet
/// per job on `exec` (via [`Executor::run_indexed`] — congestion jobs
/// are not scenario runs, so multi-process executors fall back to their
/// in-process path). Each station count is an independent seeded
/// simulation; rows render in `counts` order, so the table is identical
/// for every executor.
pub fn sweep_station_count(
    exec: &impl crate::campaign::Executor,
    base: &CongestionConfig,
    counts: &[usize],
) -> String {
    let records = exec.run_indexed(counts.len(), |i| {
        run_congestion(&CongestionConfig {
            n_stations: counts[i],
            ..base.clone()
        })
    });
    let mut out = String::from("stations   CAM rate (Hz/station)   mean CBR   worst DCC state\n");
    for (&n, record) in counts.iter().zip(&records) {
        out.push_str(&format!(
            "{n:>8}   {:>21.2}   {:>8.3}   {:?}\n",
            record.cam_rate_hz, record.mean_cbr, record.worst_dcc_state
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_fleet_beacons_freely() {
        let record = run_congestion(&CongestionConfig {
            n_stations: 2,
            ..CongestionConfig::default()
        });
        assert_eq!(record.worst_dcc_state, DccState::Relaxed);
        // Driving fast on a ring: position/heading triggers put the CAM
        // rate well above the 1 Hz floor.
        assert!(record.cam_rate_hz > 2.0, "{}", record.cam_rate_hz);
        // But DCC Relaxed still caps at 1/60 ms ≈ 16.7 Hz.
        assert!(record.cam_rate_hz < 17.0, "{}", record.cam_rate_hz);
    }

    #[test]
    fn large_fleet_gets_throttled() {
        let small = run_congestion(&CongestionConfig {
            n_stations: 5,
            ..CongestionConfig::default()
        });
        let large = run_congestion(&CongestionConfig {
            n_stations: 120,
            ..CongestionConfig::default()
        });
        assert!(
            large.worst_dcc_state > small.worst_dcc_state,
            "{:?} vs {:?}",
            large.worst_dcc_state,
            small.worst_dcc_state
        );
        assert!(
            large.cam_rate_hz < small.cam_rate_hz,
            "per-station rate falls under congestion: {} vs {}",
            large.cam_rate_hz,
            small.cam_rate_hz
        );
    }

    #[test]
    fn total_throughput_saturates_not_explodes() {
        let r40 = run_congestion(&CongestionConfig {
            n_stations: 40,
            ..CongestionConfig::default()
        });
        let r160 = run_congestion(&CongestionConfig {
            n_stations: 160,
            ..CongestionConfig::default()
        });
        // 4× the stations must not yield 4× the frames on the air.
        assert!(
            (r160.cams_transmitted as f64) < 2.5 * r40.cams_transmitted as f64,
            "{} vs {}",
            r160.cams_transmitted,
            r40.cams_transmitted
        );
    }

    #[test]
    fn deterministic() {
        let a = run_congestion(&CongestionConfig::default());
        let b = run_congestion(&CongestionConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn congestion_cbr_uses_actual_airtime() {
        let config = CongestionConfig {
            n_stations: 8,
            duration: SimDuration::from_secs(5),
            ..CongestionConfig::default()
        };
        let record = run_congestion(&config);
        // The reported mean CBR must equal the actual accumulated
        // airtime over the run duration...
        let expected = SimDuration::from_nanos(record.airtime_on_air_ns).as_secs_f64()
            / config.duration.as_secs_f64();
        assert!(
            (record.mean_cbr - expected.min(1.0)).abs() < 1e-12,
            "{} vs {expected}",
            record.mean_cbr
        );
        // ...and real CAMs are longer than the 70-byte representative
        // frame the old estimate assumed, so the naive derivation
        // undershoots the honest number.
        let naive = record.cams_transmitted as f64
            * airtime(70, phy80211p::ofdm::DataRate::Mbps6).as_secs_f64()
            / config.duration.as_secs_f64();
        assert!(
            record.mean_cbr > naive,
            "actual-airtime CBR {} should exceed the 70-byte estimate {naive}",
            record.mean_cbr
        );
    }

    #[test]
    fn sweep_renders() {
        let s = sweep_station_count(
            &crate::Runner::from_env(),
            &CongestionConfig {
                duration: SimDuration::from_secs(5),
                ..CongestionConfig::default()
            },
            &[2, 20],
        );
        assert!(s.contains("stations"));
        assert_eq!(s.lines().count(), 3);
    }
}
