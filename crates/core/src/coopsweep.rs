//! Cross-scenario cooperative fault sweep: the fault × intensity grid
//! of [`crate::faultsweep`], taken to the *cooperative* scenarios —
//! the V2V platoon string and the CPM-equipped intersection
//! (DESIGN.md §15).
//!
//! Each cell runs one scenario under one fault class at one intensity
//! and aggregates the cooperative outcome counters: how deep a
//! leader-side failure cascaded down the platoon, how many perceived
//! objects reached the protagonist only through collective perception,
//! and how many stations ended in a fail-safe stop. Every run is
//! converted into a [`RunRecord`] *outcome frame* so the counters ride
//! the versioned wire codec (v3) between shard workers exactly like
//! the classic scenario's records do.
//!
//! The grid is executed through [`Executor::run_indexed`] — the same
//! contract the city benchmark uses for non-`ScenarioConfig` sweeps:
//! [`crate::Serial`] and the shard/socket executors take the
//! deterministic serial path, the thread [`crate::Runner`] parallelises
//! it, and all of them must agree byte for byte
//! (`tests/cooperative_faults.rs` pins that equality).

use crate::campaign::Executor;
use crate::faultsweep::{plan_for, INTENSITIES};
use crate::intersection::{IntersectionConfig, IntersectionRecord, IntersectionScenario};
use crate::platoon::{run_platoon, PlatoonConfig, PlatoonLink, PlatoonRecord};
use crate::scenario::RunRecord;
use facilities::cpm::CpServiceConfig;
use faults::CoopStats;
use phy80211p::cellular::CellularProfile;
use sim_core::{SimTime, Trace};
use vehicle::watchdog::WatchdogConfig;

/// The cooperative scenarios the sweep crosses with the fault grid.
pub const COOP_SCENARIOS: [&str; 2] = ["platoon", "intersection"];

/// The fault classes exercised per scenario: the stochastic
/// radio-silence ladder plus the node-targeted outages
/// ([`crate::faultsweep::NODE_FAULT_CLASSES`]) that make failures
/// *cascade* — a silenced leader starves every watchdog downstream, a
/// silenced RSU starves both the DENM and the CPM stream.
pub const COOP_FAULT_CLASSES: [&str; 4] = [
    "radio_silence",
    "leader_silence",
    "member_crash",
    "rsu_silence",
];

/// One aggregated cell of the cooperative sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct CoopSweepRow {
    /// Scenario name (one of [`COOP_SCENARIOS`]).
    pub scenario: String,
    /// Fault class name (one of [`COOP_FAULT_CLASSES`]).
    pub class: String,
    /// Intensity in `[0, 1]`.
    pub intensity: f64,
    /// Runs in the cell.
    pub runs: usize,
    /// Runs whose DENM reached every addressed station.
    pub delivered: usize,
    /// Total followers pushed out of nominal driving, across the cell.
    pub cascade_depth: u64,
    /// Total CPM-only LDM entries beyond own sensor range.
    pub cpm_extended: u64,
    /// Total stations ending in a fail-safe stop.
    pub failsafe_stops: u64,
    /// Runs that ended in a collision.
    pub collisions: usize,
    /// Mean fault activations per run.
    pub injected_avg: f64,
}

/// The aggregated cross-scenario sweep table.
#[derive(Debug, Clone, PartialEq)]
pub struct CoopSweep {
    /// One row per (scenario, class, intensity) cell, grid order.
    pub rows: Vec<CoopSweepRow>,
}

/// The platoon cell configuration: a leader-relayed string with the
/// heartbeat watchdog armed, so leader-side faults have a cascade to
/// propagate.
pub fn platoon_cell_config(class: &str, intensity: f64, seed: u64) -> PlatoonConfig {
    PlatoonConfig {
        seed,
        link: PlatoonLink::LeaderCellularRelay(CellularProfile::nsa_5g()),
        fault_plan: plan_for(class, intensity),
        watchdog: Some(WatchdogConfig::default()),
        ..PlatoonConfig::default()
    }
}

/// The intersection cell configuration: classic conflict geometry with
/// the RSU's CP service on, so the protagonist's LDM is fed both its
/// own CAM track (at the RSU) and the RSU's camera objects (via CPM).
pub fn intersection_cell_config(class: &str, intensity: f64, seed: u64) -> IntersectionConfig {
    IntersectionConfig {
        seed,
        cpm: Some(CpServiceConfig::default()),
        fault_plan: plan_for(class, intensity),
        ..IntersectionConfig::default()
    }
}

/// Converts one platoon run into a wire-v3 outcome frame. The frame
/// carries only outcome fields (no trace): the sweep compares and
/// ships aggregates, not event logs.
pub fn platoon_outcome(record: &PlatoonRecord) -> RunRecord {
    let mut fault = record.fault;
    // The collision outcome folds into the overrun bit, the classic
    // scenario's "the safety net failed" flag.
    fault.overran_camera |= record.collision();
    RunRecord {
        denm_delivered: record.all_acted(),
        fault,
        coop: CoopStats {
            cascade_depth: record.cascade_depth as u64,
            cpm_extended_detections: 0,
            failsafe_stops: record.failsafe_stops as u64,
        },
        ..RunRecord::default()
    }
}

/// Converts one intersection run into a wire-v3 outcome frame.
pub fn intersection_outcome(record: &IntersectionRecord) -> RunRecord {
    let mut fault = record.fault;
    fault.overran_camera |= record.collision;
    RunRecord {
        denm_delivered: record.denm_delivered,
        step5_actuation: record.actuation,
        fault,
        coop: CoopStats {
            cascade_depth: 0,
            cpm_extended_detections: record.cpm_extended_detections,
            failsafe_stops: u64::from(record.protagonist_stopped),
        },
        ..RunRecord::default()
    }
}

/// Flat job count of the sweep grid.
fn job_count(runs: usize) -> usize {
    COOP_SCENARIOS.len() * COOP_FAULT_CLASSES.len() * INTENSITIES.len() * runs
}

/// Runs flat job `j` of the sweep: grid order is scenario-major,
/// then class, then intensity, then seed index — the row-major
/// flattening every executor chunks identically.
fn run_job(base_seed: u64, runs: usize, j: usize) -> RunRecord {
    let per_cell = runs;
    let per_class = INTENSITIES.len() * per_cell;
    let per_scenario = COOP_FAULT_CLASSES.len() * per_class;
    let scenario = COOP_SCENARIOS[j / per_scenario];
    let class = COOP_FAULT_CLASSES[(j % per_scenario) / per_class];
    let intensity = INTENSITIES[(j % per_class) / per_cell];
    let seed = base_seed + (j % per_cell) as u64;
    match scenario {
        "platoon" => platoon_outcome(&run_platoon(&platoon_cell_config(class, intensity, seed))),
        _ => intersection_outcome(
            &IntersectionScenario::new(intersection_cell_config(class, intensity, seed)).run(),
        ),
    }
}

fn aggregate(scenario: &str, class: &str, intensity: f64, records: &[RunRecord]) -> CoopSweepRow {
    let n = records.len().max(1) as f64;
    CoopSweepRow {
        scenario: scenario.to_owned(),
        class: class.to_owned(),
        intensity,
        runs: records.len(),
        delivered: records.iter().filter(|r| r.denm_delivered).count(),
        cascade_depth: records.iter().map(|r| r.coop.cascade_depth).sum(),
        cpm_extended: records.iter().map(|r| r.coop.cpm_extended_detections).sum(),
        failsafe_stops: records.iter().map(|r| r.coop.failsafe_stops).sum(),
        collisions: records.iter().filter(|r| r.fault.overran_camera).count(),
        injected_avg: records.iter().map(|r| r.fault.injected as f64).sum::<f64>() / n,
    }
}

/// Runs the full cross-scenario sweep on `exec` with `runs` seeds per
/// cell, seeds starting at `base_seed`.
pub fn coop_sweep(exec: &impl Executor, base_seed: u64, runs: usize) -> CoopSweep {
    let records = exec.run_indexed(job_count(runs), |j| run_job(base_seed, runs, j));
    let mut rows = Vec::with_capacity(COOP_SCENARIOS.len() * COOP_FAULT_CLASSES.len());
    let mut it = records.chunks(runs.max(1));
    for scenario in COOP_SCENARIOS {
        for class in COOP_FAULT_CLASSES {
            for intensity in INTENSITIES {
                let cell = it.next().expect("one chunk per cell");
                rows.push(aggregate(scenario, class, intensity, cell));
            }
        }
    }
    CoopSweep { rows }
}

/// The raw outcome frames of the sweep, wire-encoded back to back —
/// the byte string the cross-executor tests compare, and exactly what
/// a shard worker would ship.
pub fn coop_sweep_frames(exec: &impl Executor, base_seed: u64, runs: usize) -> Vec<u8> {
    let records = exec.run_indexed(job_count(runs), |j| run_job(base_seed, runs, j));
    let mut out = Vec::new();
    for record in &records {
        out.extend_from_slice(&record.encode());
    }
    out
}

impl CoopSweep {
    /// Renders the sweep as an aligned text table; fixed-precision, so
    /// byte-equal tables ⇔ byte-equal aggregates.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{:<13} {:<15} {:>5} {:>5} {:>5} {:>7} {:>7} {:>6} {:>5} {:>9}\n",
            "scenario",
            "fault class",
            "inten",
            "runs",
            "deliv",
            "cascade",
            "cpm_ext",
            "fstop",
            "coll",
            "inj/run",
        );
        for r in &self.rows {
            out.push_str(&format!(
                "{:<13} {:<15} {:>5.2} {:>5} {:>5} {:>7} {:>7} {:>6} {:>5} {:>9.3}\n",
                r.scenario,
                r.class,
                r.intensity,
                r.runs,
                r.delivered,
                r.cascade_depth,
                r.cpm_extended,
                r.failsafe_stops,
                r.collisions,
                r.injected_avg,
            ));
        }
        out
    }

    /// FNV-1a digest of the rendered table — the cross-executor
    /// identity check.
    pub fn fingerprint(&self) -> u64 {
        let mut t = Trace::new();
        t.record(SimTime::ZERO, "coopsweep", "table", &self.render());
        t.digest()
    }

    /// The row for `(scenario, class, intensity)`.
    ///
    /// # Panics
    ///
    /// Panics if the cell is not in the grid.
    pub fn cell(&self, scenario: &str, class: &str, intensity: f64) -> &CoopSweepRow {
        self.rows
            .iter()
            .find(|r| r.scenario == scenario && r.class == class && r.intensity == intensity)
            .unwrap_or_else(|| panic!("no cell {scenario}/{class} @ {intensity}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Serial;

    #[test]
    fn grid_covers_every_scenario_class_and_intensity() {
        let sweep = coop_sweep(&Serial, 9000, 1);
        assert_eq!(
            sweep.rows.len(),
            COOP_SCENARIOS.len() * COOP_FAULT_CLASSES.len() * INTENSITIES.len()
        );
        for scenario in COOP_SCENARIOS {
            for class in COOP_FAULT_CLASSES {
                for intensity in INTENSITIES {
                    let row = sweep.cell(scenario, class, intensity);
                    assert_eq!(row.runs, 1);
                }
            }
        }
    }

    #[test]
    fn leader_silence_cascades_down_the_platoon() {
        let sweep = coop_sweep(&Serial, 9000, 2);
        // A silenced leader starves every follower's watchdog: the
        // cascade reaches the whole string and every follower ends in
        // a fail-safe stop.
        let cell = sweep.cell("platoon", "leader_silence", 1.0);
        assert_eq!(cell.delivered, 0, "{cell:?}");
        assert!(cell.cascade_depth >= 3 * cell.runs as u64, "{cell:?}");
        assert!(cell.failsafe_stops >= 3 * cell.runs as u64, "{cell:?}");
    }

    #[test]
    fn degradation_is_monotone_in_intensity() {
        let sweep = coop_sweep(&Serial, 9000, 2);
        // Platoon: silence-style faults starve the heartbeat relay, so
        // the cascade depth and the watchdog's fail-safe stops can only
        // grow with intensity.
        for class in ["radio_silence", "leader_silence"] {
            let mut prev_cascade = 0;
            let mut prev_stops = 0;
            for (k, intensity) in INTENSITIES.iter().enumerate() {
                let cell = sweep.cell("platoon", class, *intensity);
                if k > 0 {
                    assert!(
                        cell.cascade_depth >= prev_cascade,
                        "platoon/{class}: {} < {prev_cascade}",
                        cell.cascade_depth
                    );
                    assert!(
                        cell.failsafe_stops >= prev_stops,
                        "platoon/{class}: {} < {prev_stops}",
                        cell.failsafe_stops
                    );
                }
                prev_cascade = cell.cascade_depth;
                prev_stops = cell.failsafe_stops;
            }
        }
        // Intersection: no watchdog cascade — degradation shows as
        // fewer deliveries/protective stops and more collisions.
        for class in ["leader_silence", "rsu_silence"] {
            let mut prev_delivered = usize::MAX;
            let mut prev_collisions = 0;
            let mut prev_protective = u64::MAX;
            for intensity in INTENSITIES {
                let cell = sweep.cell("intersection", class, intensity);
                assert!(
                    cell.delivered <= prev_delivered,
                    "intersection/{class}: {} > {prev_delivered}",
                    cell.delivered
                );
                assert!(
                    cell.collisions >= prev_collisions,
                    "intersection/{class}: {} < {prev_collisions}",
                    cell.collisions
                );
                assert!(
                    cell.failsafe_stops <= prev_protective,
                    "intersection/{class}: {} > {prev_protective}",
                    cell.failsafe_stops
                );
                prev_delivered = cell.delivered;
                prev_collisions = cell.collisions;
                prev_protective = cell.failsafe_stops;
            }
        }
    }

    #[test]
    fn rsu_silence_starves_cpm_and_denm_together() {
        let sweep = coop_sweep(&Serial, 9000, 2);
        let mild = sweep.cell("intersection", "rsu_silence", 0.25);
        let total = sweep.cell("intersection", "rsu_silence", 1.0);
        // The full-length outage suppresses both streams; the short one
        // ends before the conflict is even predicted.
        assert!(total.delivered <= mild.delivered, "{total:?} vs {mild:?}");
        assert!(
            total.cpm_extended < mild.cpm_extended,
            "{total:?} vs {mild:?}"
        );
    }

    #[test]
    fn sweep_is_deterministic_and_frames_roundtrip() {
        let a = coop_sweep(&Serial, 9000, 1);
        let b = coop_sweep(&Serial, 9000, 1);
        assert_eq!(a, b);
        assert_eq!(a.fingerprint(), b.fingerprint());
        let frames = coop_sweep_frames(&Serial, 9000, 1);
        let mut r = geonet::bytesio::ByteReader::new(&frames);
        let mut decoded = 0;
        while r.remaining() > 0 {
            let record = RunRecord::decode_from(&mut r).expect("frame decodes");
            let _ = record.coop;
            decoded += 1;
        }
        assert_eq!(decoded, job_count(1));
    }
}
