//! # ETSI ITS-enabled Robotic Scale Testbed
//!
//! A full software reproduction of the testbed of *"An ETSI ITS-enabled
//! Robotic Scale Testbed for Network-Aided Safety-Critical Scenarios"*
//! (DSN 2023): a 1/10-scale autonomous vehicle with an ETSI ITS On-Board
//! Unit, and a road-side infrastructure (camera + edge object detection +
//! Road-Side Unit) that detects an impending collision and issues a DENM
//! that makes the vehicle emergency-brake.
//!
//! Everything the physical testbed contained is implemented as a
//! simulated substrate on a deterministic discrete-event engine: the ETSI
//! ITS stack (UPER-coded CAM/DENM, GeoNetworking + BTP, CA/DEN/LDM
//! facilities), the IEEE 802.11p access layer, the OpenC2X-style HTTP
//! application API, the YOLO-like road-side perception, and the vehicle's
//! line-following control chain down to the ESC.
//!
//! ## Quick start
//!
//! ```
//! use its_testbed::scenario::{Scenario, ScenarioConfig};
//!
//! let record = Scenario::new(ScenarioConfig { seed: 7, ..Default::default() }).run();
//! assert!(record.completed());
//! let total = record.total_delay_ms().unwrap();
//! assert!(total < 100, "paper's headline claim: under 100 ms");
//! ```
//!
//! ## Reproducing the paper's tables and figures
//!
//! The [`experiments`] module regenerates every evaluation artefact:
//! [`experiments::table2`] (per-step intervals), [`experiments::fig11`]
//! (EDF of total delay), [`experiments::table3`] (braking distances),
//! [`experiments::fig10`] (video-frame detection-to-stop), and
//! [`experiments::table1`] (cause-code table). The extension experiments
//! ([`platoon`], the cellular comparison in
//! [`scenario::DenmLink::Cellular`], and the blind-corner ablation in
//! `benches`) implement the paper's §V future work.
//!
//! Campaigns (the `experiments` tables and every `ablation` sweep) are
//! [`campaign::CampaignSpec`]s executed through the generic
//! [`campaign::Executor`] interface: [`campaign::Serial`] (a plain
//! loop), the deterministic thread pool [`Runner`] (crate `runner`,
//! `RUNNER_THREADS` overrides the worker count), or the multi-process
//! shard coordinator (crate `shard`, DESIGN.md §10). All executors share
//! the static-chunk/index-merge contract, so results are bitwise
//! identical however a campaign is run. [`wire`] gives [`RunRecord`] the
//! versioned binary encoding the shard protocol ships between processes.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

pub mod ablation;
pub mod campaign;
pub mod city;
pub mod congestion;
pub mod coopsweep;
pub mod experiments;
pub mod faultsweep;
pub mod intersection;
pub mod metrics;
pub mod platoon;
pub mod scaling;
pub mod scenario;
pub mod station;
pub mod submission;
pub mod wire;

pub use campaign::{CampaignRegistry, CampaignSpec, Executor, SeedSchedule, Serial};
pub use runner::Runner;
pub use scenario::{RunRecord, Scenario, ScenarioConfig};
