//! Scale-to-full-size braking extrapolation (paper §IV-B outlook).
//!
//! "Using parameters of the full-size vehicles, such as stopping power,
//! weight and frontal area, models can be drawn to map braking distances
//! observed in the testbed to real-world ones." This module provides that
//! model: both vehicles are described by the same longitudinal force
//! balance (constant friction/brake deceleration + speed-proportional
//! drag + aerodynamic term), and a measured scale braking distance is
//! mapped to a full-size prediction via the ratio of their
//! characteristic stopping distances at dynamically similar speeds.

/// Longitudinal braking description of a vehicle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BrakingProfile {
    /// Vehicle mass, kg.
    pub mass_kg: f64,
    /// Constant braking force (friction-limited or power-cut drag), N.
    pub brake_force_n: f64,
    /// Speed-proportional drag, N per (m/s).
    pub linear_drag: f64,
    /// Aerodynamic drag, N per (m/s)².
    pub quadratic_drag: f64,
}

impl BrakingProfile {
    /// The 1/10-scale vehicle under a power cut (matches
    /// [`vehicle::dynamics::VehicleParams::default`]).
    pub fn scale_power_cut() -> Self {
        Self {
            mass_kg: 3.2,
            brake_force_n: 0.08 * 3.2 * 9.81,
            linear_drag: 12.0,
            quadratic_drag: 0.02,
        }
    }

    /// A full-size passenger car under moderate service braking
    /// (~0.45 g), 1500 kg, typical drag area.
    pub fn full_size_service_brake() -> Self {
        Self {
            mass_kg: 1500.0,
            brake_force_n: 0.45 * 1500.0 * 9.81,
            linear_drag: 30.0,
            quadratic_drag: 0.4,
        }
    }

    /// A full-size car under emergency AEB braking (~0.8 g).
    pub fn full_size_emergency_brake() -> Self {
        Self {
            brake_force_n: 0.8 * 1500.0 * 9.81,
            ..Self::full_size_service_brake()
        }
    }

    /// Stopping distance from `v0` by integrating
    /// `m·dv/dt = −(F + c₁·v + c₂·v²)`.
    ///
    /// # Panics
    ///
    /// Panics if `v0` is negative.
    pub fn stopping_distance(&self, v0: f64) -> f64 {
        assert!(v0 >= 0.0, "speed must be non-negative");
        let mut v = v0;
        let mut d = 0.0;
        let dt = 1e-4;
        while v > 0.0 {
            let force = self.brake_force_n + self.linear_drag * v + self.quadratic_drag * v * v;
            let a = force / self.mass_kg;
            let v_next = (v - a * dt).max(0.0);
            d += 0.5 * (v + v_next) * dt;
            v = v_next;
        }
        d
    }

    /// Stopping time from `v0`, seconds.
    pub fn stopping_time(&self, v0: f64) -> f64 {
        let mut v = v0;
        let mut t = 0.0;
        let dt = 1e-4;
        while v > 0.0 {
            let force = self.brake_force_n + self.linear_drag * v + self.quadratic_drag * v * v;
            v = (v - force / self.mass_kg * dt).max(0.0);
            t += dt;
        }
        t
    }
}

/// Maps a braking distance observed on the scale testbed to the
/// predicted full-size distance.
///
/// `scale_speed` is the scale vehicle's speed at braking onset;
/// `full_speed` the full-size speed of interest. The measured scale
/// distance is corrected by the model ratio so systematic measurement
/// bias carries over proportionally.
pub fn extrapolate_braking_distance(
    measured_scale_m: f64,
    scale: &BrakingProfile,
    scale_speed: f64,
    full: &BrakingProfile,
    full_speed: f64,
) -> f64 {
    let model_scale = scale.stopping_distance(scale_speed);
    let model_full = full.stopping_distance(full_speed);
    measured_scale_m * (model_full / model_scale.max(f64::MIN_POSITIVE))
}

/// Adds the reaction/latency travel to a braking distance: the distance
/// covered at `speed` during `latency_s` before the brakes act.
pub fn total_stopping_distance(braking_m: f64, speed: f64, latency_s: f64) -> f64 {
    braking_m + speed * latency_s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_profile_matches_measured_band() {
        // The paper's Table III measures ~0.27 m of pure braking after
        // the latency travel is removed (0.36 m − 1.5 m/s × 58 ms).
        let d = BrakingProfile::scale_power_cut().stopping_distance(1.5);
        assert!((0.2..=0.36).contains(&d), "scale braking {d} m");
    }

    #[test]
    fn full_size_braking_from_50_kmh() {
        // ~0.45 g from 13.9 m/s: v²/(2a) ≈ 21.9 m (plus drag, slightly
        // less).
        let d = BrakingProfile::full_size_service_brake().stopping_distance(50.0 / 3.6);
        assert!((15.0..=23.0).contains(&d), "full-size braking {d} m");
    }

    #[test]
    fn emergency_brake_shorter_than_service_brake() {
        let v = 100.0 / 3.6;
        let service = BrakingProfile::full_size_service_brake().stopping_distance(v);
        let emergency = BrakingProfile::full_size_emergency_brake().stopping_distance(v);
        assert!(emergency < service * 0.7, "{emergency} vs {service}");
    }

    #[test]
    fn stopping_distance_monotone_in_speed() {
        let p = BrakingProfile::full_size_service_brake();
        let mut prev = 0.0;
        for kmh in [10.0, 30.0, 50.0, 80.0, 120.0] {
            let d = p.stopping_distance(kmh / 3.6);
            assert!(d > prev);
            prev = d;
        }
    }

    #[test]
    fn extrapolation_is_proportional_to_measurement() {
        let scale = BrakingProfile::scale_power_cut();
        let full = BrakingProfile::full_size_service_brake();
        let a = extrapolate_braking_distance(0.27, &scale, 1.5, &full, 13.9);
        let b = extrapolate_braking_distance(0.54, &scale, 1.5, &full, 13.9);
        assert!((b / a - 2.0).abs() < 1e-9);
        // A 0.27 m scale stop maps to roughly the model's full-size
        // distance since the model matches the measurement.
        let model = full.stopping_distance(13.9);
        assert!((a - model).abs() / model < 0.35, "a={a}, model={model}");
    }

    #[test]
    fn latency_travel_added_linearly() {
        let total = total_stopping_distance(20.0, 13.9, 0.1);
        assert!((total - 21.39).abs() < 1e-9);
    }

    #[test]
    fn stopping_time_consistent_with_distance() {
        let p = BrakingProfile::scale_power_cut();
        let t = p.stopping_time(1.5);
        let d = p.stopping_distance(1.5);
        // Mean speed during the stop is below the initial speed.
        assert!(d / t < 1.5);
        assert!(t > 0.1 && t < 2.0, "t = {t}");
    }
}
