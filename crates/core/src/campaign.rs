//! The unified campaign abstraction: *what* to run, separated from
//! *how* to run it.
//!
//! A Monte-Carlo campaign is a [`CampaignSpec`] — a base
//! [`ScenarioConfig`], a [`SeedSchedule`], and a run count. Executing it
//! is delegated to an [`Executor`]:
//!
//! * [`Serial`] — a plain loop on the calling thread (the reference
//!   semantics every other executor must reproduce bitwise),
//! * [`Runner`] — the in-process thread pool of `crates/runner`
//!   (DESIGN.md §8),
//! * `shard::ShardExecutor` — the multi-process coordinator of
//!   `crates/shard` (DESIGN.md §10).
//!
//! Every experiment entry point ([`crate::experiments`],
//! [`crate::ablation`], [`crate::congestion`]) takes `&impl Executor`,
//! so the same campaign definition runs serially, across threads, or
//! across worker processes — and, by the executors' shared
//! static-chunk/index-merge contract, produces byte-identical results
//! on all of them.
//!
//! # Example
//!
//! ```
//! use its_testbed::campaign::{CampaignSpec, Executor, Serial};
//! use its_testbed::{Runner, ScenarioConfig};
//!
//! let spec = CampaignSpec::new(ScenarioConfig::default(), 4);
//! let serial = spec.execute(&Serial);
//! let threaded = spec.execute(&Runner::new(2));
//! assert_eq!(serial.len(), 4);
//! for (a, b) in serial.iter().zip(&threaded) {
//!     assert_eq!(a.trace.digest(), b.trace.digest());
//! }
//! ```

use crate::scenario::{RunRecord, Scenario, ScenarioConfig};
use runner::Runner;

/// How run indices map to scenario seeds.
///
/// Run `i` of a campaign always uses seed `base.seed + offset(i)`; the
/// schedule only chooses the offset. Keeping the historical offsets
/// stable is what keeps campaign fingerprints (e.g. Table III's mean
/// braking distance) byte-identical across refactors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeedSchedule {
    /// Run `i` uses seed index `i` (seed `base.seed + i`).
    Consecutive,
    /// Run `i` uses seed index `offset + i` — e.g. Table III's
    /// historical `+1000` block, which keeps its campaign disjoint from
    /// Table II's on the same base seed.
    Offset(u64),
}

impl SeedSchedule {
    /// The seed index of run `i` under this schedule.
    pub fn seed_index(&self, i: usize) -> u64 {
        match self {
            SeedSchedule::Consecutive => i as u64,
            SeedSchedule::Offset(offset) => offset + i as u64,
        }
    }
}

/// One campaign: a base configuration, a seed schedule, and a run count.
#[derive(Debug, Clone)]
pub struct CampaignSpec {
    /// Configuration shared by every run; run `i` overrides only the
    /// seed (`base.seed + seeds.seed_index(i)`).
    pub base: ScenarioConfig,
    /// The run-index → seed mapping.
    pub seeds: SeedSchedule,
    /// Number of seeded runs.
    pub runs: usize,
}

impl CampaignSpec {
    /// A campaign of `runs` consecutive seeds starting at `base.seed`.
    pub fn new(base: ScenarioConfig, runs: usize) -> Self {
        Self {
            base,
            seeds: SeedSchedule::Consecutive,
            runs,
        }
    }

    /// A campaign whose seed indices start at `offset` (run `i` uses
    /// seed `base.seed + offset + i`).
    pub fn with_seed_offset(base: ScenarioConfig, offset: u64, runs: usize) -> Self {
        Self {
            base,
            seeds: SeedSchedule::Offset(offset),
            runs,
        }
    }

    /// Executes run `i`: a pure function of the spec and the index —
    /// the property every executor relies on to parallelise without
    /// changing results.
    pub fn run_job(&self, i: usize) -> RunRecord {
        Scenario::run_seeded(&self.base, self.seeds.seed_index(i))
    }

    /// Executes the whole campaign on `executor`; records come back in
    /// seed-index order.
    pub fn execute(&self, executor: &impl Executor) -> Vec<RunRecord> {
        executor.execute(self)
    }

    /// A stable 64-bit fingerprint of the spec (FNV-1a over the full
    /// `Debug` rendering of the configuration plus the schedule and run
    /// count).
    ///
    /// The shard protocol uses it as a coordinator/worker handshake:
    /// both sides derive the spec from the same code, and the
    /// fingerprint proves they derived the *same* spec before any
    /// distributed result is trusted (see DESIGN.md §10).
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv::new();
        h.eat(format!("{:?}", self.base).as_bytes());
        h.eat(format!("{:?}", self.seeds).as_bytes());
        h.eat(&(self.runs as u64).to_le_bytes());
        h.finish()
    }
}

/// Named campaigns a binary — or a campaign server — can execute by
/// name.
///
/// A registry is plain data: names and `fn() -> Vec<CampaignSpec>`
/// pointers. Because deriving a campaign is pure code, two processes
/// (a shard coordinator and its re-exec'd worker, or a campaign server
/// and a socket worker on another host) construct the same registry and
/// identify a campaign across the process boundary by name plus grid
/// fingerprint instead of by serialising configuration — see
/// [`grid_fingerprint`] and DESIGN.md §10/§14.
///
/// Registration order is part of the API: [`names`](Self::names)
/// iterates in it, so listings (e.g. the campaign server's
/// `GET /campaigns`) are deterministic for a given binary.
#[derive(Debug, Clone, Default)]
pub struct CampaignRegistry {
    entries: Vec<(&'static str, fn() -> Vec<CampaignSpec>)>,
}

impl CampaignRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a named campaign; `derive` must be a pure function so every
    /// process derives identical specs.
    pub fn register(mut self, name: &'static str, derive: fn() -> Vec<CampaignSpec>) -> Self {
        self.entries.push((name, derive));
        self
    }

    /// Derives the named campaign's specs, if registered.
    pub fn derive(&self, name: &str) -> Option<Vec<CampaignSpec>> {
        self.entries
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, f)| f())
    }

    /// Whether `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.entries.iter().any(|(n, _)| *n == name)
    }

    /// Registered campaign names, in registration order.
    pub fn names(&self) -> impl Iterator<Item = &'static str> + '_ {
        self.entries.iter().map(|(n, _)| *n)
    }

    /// Number of registered campaigns.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// A stable fingerprint of a whole campaign grid, order-sensitive.
pub fn grid_fingerprint(specs: &[CampaignSpec]) -> u64 {
    let mut h = Fnv::new();
    h.eat(&(specs.len() as u64).to_le_bytes());
    for spec in specs {
        h.eat(&spec.fingerprint().to_le_bytes());
    }
    h.finish()
}

/// FNV-1a, the same construction `sim_core::Trace::digest` uses.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Self(0xcbf2_9ce4_8422_2325)
    }
    fn eat(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }
    fn finish(&self) -> u64 {
        self.0
    }
}

/// An execution strategy for campaigns.
///
/// The contract every implementation must honour: `execute` returns
/// exactly `spec.runs` records, element `i` being `spec.run_job(i)` —
/// bitwise. How the work is scheduled (inline, threads, processes) is
/// the implementation's business; the output is not.
pub trait Executor {
    /// Executes every run of `spec`; records in seed-index order.
    fn execute(&self, spec: &CampaignSpec) -> Vec<RunRecord>;

    /// Executes a grid of campaigns (one per swept parameter value),
    /// returning one record vector per spec, each in seed-index order.
    ///
    /// The default runs the specs back to back; executors with a worker
    /// pool override this to flatten the grid into a single row-major
    /// job list so small per-parameter campaigns still fill every
    /// worker.
    fn execute_grid(&self, specs: &[CampaignSpec]) -> Vec<Vec<RunRecord>> {
        specs.iter().map(|spec| self.execute(spec)).collect()
    }

    /// Executes `job(i)` for `i in 0..jobs`, results in index order —
    /// the generic escape hatch for campaigns whose jobs are not
    /// scenario runs (e.g. the congestion fleets, one whole simulated
    /// fleet per job).
    ///
    /// The default is a serial loop; in-process executors override it
    /// to parallelise. Multi-process executors cannot ship arbitrary
    /// closures to workers, so they fall back to this default — which
    /// is still bitwise identical, just not distributed.
    fn run_indexed<T, F>(&self, jobs: usize, job: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        (0..jobs).map(job).collect()
    }
}

/// The reference executor: a plain serial loop on the calling thread.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Serial;

impl Executor for Serial {
    fn execute(&self, spec: &CampaignSpec) -> Vec<RunRecord> {
        (0..spec.runs).map(|i| spec.run_job(i)).collect()
    }
}

impl Executor for Runner {
    fn execute(&self, spec: &CampaignSpec) -> Vec<RunRecord> {
        self.run(spec.runs, |i| spec.run_job(i))
    }

    /// Flattens the grid into one row-major job list (spec-major, run-
    /// minor) so the static chunk assignment spreads the whole grid —
    /// not each small per-parameter campaign — across the pool.
    fn execute_grid(&self, specs: &[CampaignSpec]) -> Vec<Vec<RunRecord>> {
        // Exclusive prefix sums: offsets[k] is the flat index of spec
        // k's first run.
        let mut offsets = Vec::with_capacity(specs.len() + 1);
        let mut total = 0usize;
        for spec in specs {
            offsets.push(total);
            total += spec.runs;
        }
        offsets.push(total);
        let records = self.run(total, |j| {
            let k = match offsets.binary_search(&j) {
                Ok(k) => k,
                Err(k) => k - 1,
            };
            specs[k].run_job(j - offsets[k])
        });
        let mut records = records.into_iter();
        specs
            .iter()
            .map(|spec| records.by_ref().take(spec.runs).collect())
            .collect()
    }

    fn run_indexed<T, F>(&self, jobs: usize, job: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        self.run(jobs, job)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> ScenarioConfig {
        ScenarioConfig {
            seed: 5000,
            ..ScenarioConfig::default()
        }
    }

    #[test]
    fn serial_matches_run_job_schedule() {
        let spec = CampaignSpec::new(base(), 4);
        let records = spec.execute(&Serial);
        assert_eq!(records.len(), 4);
        for (i, record) in records.iter().enumerate() {
            let reference = Scenario::run_seeded(&base(), i as u64);
            assert_eq!(record.trace.digest(), reference.trace.digest(), "run {i}");
        }
    }

    #[test]
    fn seed_offset_schedule_matches_historical_table3_seeds() {
        let spec = CampaignSpec::with_seed_offset(base(), 1000, 3);
        let records = spec.execute(&Serial);
        for (i, record) in records.iter().enumerate() {
            let reference = Scenario::run_seeded(&base(), 1000 + i as u64);
            assert_eq!(record.trace.digest(), reference.trace.digest(), "run {i}");
        }
    }

    #[test]
    fn runner_executor_matches_serial_at_any_thread_count() {
        let spec = CampaignSpec::new(base(), 6);
        let serial = spec.execute(&Serial);
        for threads in [1, 3, 8] {
            let parallel = spec.execute(&Runner::new(threads));
            assert_eq!(serial.len(), parallel.len());
            for (a, b) in serial.iter().zip(&parallel) {
                assert_eq!(a.trace.digest(), b.trace.digest(), "{threads} threads");
            }
        }
    }

    #[test]
    fn grid_execution_matches_per_spec_execution() {
        let specs = vec![
            CampaignSpec::new(base(), 3),
            CampaignSpec::with_seed_offset(base(), 1000, 2),
            CampaignSpec::new(
                ScenarioConfig {
                    seed: 5100,
                    ..base()
                },
                4,
            ),
        ];
        let individually: Vec<Vec<RunRecord>> = specs.iter().map(|s| s.execute(&Serial)).collect();
        for threads in [1, 2, 8] {
            let grid = Runner::new(threads).execute_grid(&specs);
            assert_eq!(grid.len(), individually.len());
            for (k, (a, b)) in individually.iter().zip(&grid).enumerate() {
                assert_eq!(a.len(), b.len(), "spec {k}");
                for (x, y) in a.iter().zip(b) {
                    assert_eq!(x.trace.digest(), y.trace.digest(), "spec {k}");
                }
            }
        }
    }

    #[test]
    fn fingerprint_is_stable_and_sensitive() {
        let spec = CampaignSpec::new(base(), 5);
        assert_eq!(
            spec.fingerprint(),
            CampaignSpec::new(base(), 5).fingerprint()
        );
        assert_ne!(
            spec.fingerprint(),
            CampaignSpec::new(base(), 6).fingerprint()
        );
        assert_ne!(
            spec.fingerprint(),
            CampaignSpec::with_seed_offset(base(), 1000, 5).fingerprint()
        );
        assert_ne!(
            spec.fingerprint(),
            CampaignSpec::new(
                ScenarioConfig {
                    seed: 5001,
                    ..base()
                },
                5
            )
            .fingerprint()
        );
        let grid = [CampaignSpec::new(base(), 5), CampaignSpec::new(base(), 2)];
        assert_ne!(grid_fingerprint(&grid), grid_fingerprint(&grid[..1]));
    }

    #[test]
    fn registry_lookup_and_ordered_names() {
        fn grid_a() -> Vec<CampaignSpec> {
            vec![CampaignSpec::new(ScenarioConfig::default(), 2)]
        }
        fn grid_b() -> Vec<CampaignSpec> {
            vec![CampaignSpec::new(ScenarioConfig::default(), 3)]
        }
        let r = CampaignRegistry::new()
            .register("beta", grid_b)
            .register("alpha", grid_a);
        // Registration order, not lexical order: listings must reflect
        // exactly what the binary registered.
        assert_eq!(r.names().collect::<Vec<_>>(), vec!["beta", "alpha"]);
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
        assert!(r.contains("alpha"));
        assert!(!r.contains("gamma"));
        assert_eq!(r.derive("beta").map(|g| g.len()), Some(1));
        assert!(r.derive("gamma").is_none());
        assert!(CampaignRegistry::new().is_empty());
    }

    #[test]
    fn run_indexed_default_is_serial_order() {
        let out = Serial.run_indexed(5, |i| i * 2);
        assert_eq!(out, vec![0, 2, 4, 6, 8]);
        assert_eq!(Runner::new(3).run_indexed(5, |i| i * 2), out);
    }
}
