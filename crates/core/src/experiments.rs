//! The experiment harness: one function per table/figure of the paper's
//! evaluation, each returning structured results plus a rendered text
//! table in the paper's format.
//!
//! | Artefact | Function | Paper reference values |
//! |---|---|---|
//! | Table I | [`table1`] | cause-code rows |
//! | Table II | [`table2`] | 27.6 / 1.6 / 29.2 / 58.4 ms averages |
//! | Table III | [`table3`] | 0.31–0.43 m, avg 0.36 m, var 0.0022 |
//! | Fig. 10 | [`fig10`] | frame-quantised detection-to-stop |
//! | Fig. 11 | [`fig11`] | EDF of total delay, all < 100 ms |

use crate::campaign::{CampaignSpec, Executor};
use crate::metrics::{mean, variance, Edf};
use crate::scenario::{RunRecord, Scenario, ScenarioConfig};
use its_messages::cause_codes::TABLE_I_ROWS;

/// Paper's Table II per-run values, for side-by-side comparison.
pub mod paper {
    /// Step #2→#3 intervals, ms (runs 1–5).
    pub const INTERVAL_2_3: [f64; 5] = [34.0, 27.0, 27.0, 21.0, 29.0];
    /// Step #3→#4 intervals, ms.
    pub const INTERVAL_3_4: [f64; 5] = [1.0, 2.0, 2.0, 1.0, 2.0];
    /// Step #4→#5 intervals, ms.
    pub const INTERVAL_4_5: [f64; 5] = [36.0, 41.0, 23.0, 22.0, 24.0];
    /// Total delays, ms.
    pub const TOTAL: [f64; 5] = [71.0, 70.0, 52.0, 44.0, 55.0];
    /// Table III braking distances, m (runs 1–7).
    pub const BRAKING: [f64; 7] = [0.43, 0.37, 0.31, 0.42, 0.31, 0.36, 0.36];
}

/// Result of the Table II experiment.
#[derive(Debug, Clone)]
pub struct Table2 {
    /// Per-run #2→#3 intervals, ms.
    pub interval_2_3: Vec<f64>,
    /// Per-run #3→#4 intervals, ms.
    pub interval_3_4: Vec<f64>,
    /// Per-run #4→#5 intervals, ms.
    pub interval_4_5: Vec<f64>,
    /// Per-run total delays, ms.
    pub total: Vec<f64>,
    /// The raw run records.
    pub records: Vec<RunRecord>,
}

impl Table2 {
    /// Renders the table in the paper's layout.
    pub fn render(&self) -> String {
        let row = |name: &str, xs: &[f64]| {
            let cells: Vec<String> = xs.iter().map(|x| format!("{x:>5.0}")).collect();
            format!("{name:<42} {} | avg {:>6.1} ms", cells.join(" "), mean(xs))
        };
        let mut out = String::new();
        out.push_str("TABLE II: Time interval measurements\n");
        out.push_str(&row(
            "#2 Action Point Detection -> #3 RSU sends",
            &self.interval_2_3,
        ));
        out.push('\n');
        out.push_str(&row(
            "#3 RSU sends DENM -> #4 OBU receives",
            &self.interval_3_4,
        ));
        out.push('\n');
        out.push_str(&row(
            "#4 OBU receives -> #5 Vehicle Actuators",
            &self.interval_4_5,
        ));
        out.push('\n');
        out.push_str(&row("Total Delay", &self.total));
        out.push('\n');
        out
    }
}

/// Runs `runs` collision-avoidance scenarios on `exec` and extracts
/// Table II. Run `i` uses seed `base.seed + i` and the per-run rows are
/// extracted in seed order, so the table is bitwise identical for every
/// executor — serial, threaded, or sharded.
///
/// # Panics
///
/// Panics if a run fails to complete the pipeline (should not happen at
/// lab scale with default configuration).
pub fn table2(exec: &impl Executor, base: &ScenarioConfig, runs: usize) -> Table2 {
    let records = CampaignSpec::new(base.clone(), runs).execute(exec);
    let mut t = Table2 {
        interval_2_3: Vec::with_capacity(runs),
        interval_3_4: Vec::with_capacity(runs),
        interval_4_5: Vec::with_capacity(runs),
        total: Vec::with_capacity(runs),
        records: Vec::with_capacity(runs),
    };
    for (i, record) in records.into_iter().enumerate() {
        assert!(record.completed(), "run {i} did not complete");
        t.interval_2_3
            .push(record.interval_2_3_ms().expect("completed") as f64);
        t.interval_3_4
            .push(record.interval_3_4_ms().expect("completed") as f64);
        t.interval_4_5
            .push(record.interval_4_5_ms().expect("completed") as f64);
        t.total
            .push(record.total_delay_ms().expect("completed") as f64);
        t.records.push(record);
    }
    t
}

/// Result of the Figure 11 experiment.
#[derive(Debug, Clone)]
pub struct Fig11 {
    /// EDF of the measured total delays.
    pub edf: Edf,
}

impl Fig11 {
    /// Renders the EDF step points.
    pub fn render(&self) -> String {
        let mut out = String::from("FIG 11: Empirical distribution function of total delay\n");
        out.push_str("  x (ms)    F(x)\n");
        for (x, f) in self.edf.step_points() {
            out.push_str(&format!("  {x:>6.1}   {f:>5.2}\n"));
        }
        out.push_str(&format!(
            "  n={} mean={:.1} ms min={:.0} max={:.0}\n",
            self.edf.len(),
            self.edf.mean(),
            self.edf.min(),
            self.edf.max()
        ));
        out
    }
}

/// Runs the scenario `runs` times on `exec` and builds the total-delay
/// EDF.
pub fn fig11(exec: &impl Executor, base: &ScenarioConfig, runs: usize) -> Fig11 {
    let t = table2(exec, base, runs);
    Fig11 {
        edf: Edf::from_samples(t.total),
    }
}

/// Result of the Table III experiment.
#[derive(Debug, Clone)]
pub struct Table3 {
    /// Per-run braking distance (detection to halt), m.
    pub braking_m: Vec<f64>,
}

impl Table3 {
    /// Mean braking distance, m.
    pub fn mean(&self) -> f64 {
        mean(&self.braking_m)
    }

    /// Population variance.
    pub fn variance(&self) -> f64 {
        variance(&self.braking_m)
    }

    /// Renders the table in the paper's layout.
    pub fn render(&self) -> String {
        let cells: Vec<String> = self.braking_m.iter().map(|x| format!("{x:.2}")).collect();
        format!(
            "TABLE III: Distance travelled from detection to halt\nBraking Dist. (m): {}\navg {:.2} m, variance {:.4}\n",
            cells.join("  "),
            self.mean(),
            self.variance()
        )
    }
}

/// Runs `runs` scenarios on `exec` and collects braking distances. Run
/// `i` keeps its historical seed `base.seed + 1000 + i`
/// ([`crate::campaign::SeedSchedule::Offset`]), so the table matches the
/// pre-redesign serial campaign bit for bit.
///
/// # Panics
///
/// Panics if a run fails to complete.
pub fn table3(exec: &impl Executor, base: &ScenarioConfig, runs: usize) -> Table3 {
    let records = CampaignSpec::with_seed_offset(base.clone(), 1000, runs).execute(exec);
    let braking = records
        .iter()
        .map(|r| r.braking_distance_m().expect("completed run"))
        .collect();
    Table3 { braking_m: braking }
}

/// Result of the Figure 10 experiment: the detection-to-stop period as
/// measured from the road-side camera's video frames.
#[derive(Debug, Clone)]
pub struct Fig10 {
    /// Ground-truth detection-to-stop, seconds.
    pub true_detection_to_stop_s: f64,
    /// The same period measured by counting camera frames (quantised to
    /// the frame period, as in the paper's video analysis).
    pub frame_measured_s: f64,
    /// Camera frame period, seconds.
    pub frame_period_s: f64,
    /// Estimated distance at the triggering detection, m.
    pub detected_at_m: f64,
    /// Action-point distance, m.
    pub action_point_m: f64,
}

impl Fig10 {
    /// Renders the measurement summary.
    pub fn render(&self) -> String {
        format!(
            "FIG 10: Video frames to obtain detection-to-stop period\n\
             action point {:.2} m, detected at {:.2} m\n\
             true period {:.3} s; frame-quantised ({} ms frames) {:.3} s\n",
            self.action_point_m,
            self.detected_at_m,
            self.true_detection_to_stop_s,
            (self.frame_period_s * 1000.0) as u64,
            self.frame_measured_s
        )
    }
}

/// Runs one scenario and measures detection-to-stop from the camera's
/// frame clock (the paper's Fig. 10 method).
pub fn fig10(base: &ScenarioConfig) -> Fig10 {
    let record = Scenario::new(base.clone()).run();
    let period = 1.0 / base.camera.processed_fps;
    let t_detect = record.step2_detection.expect("completed").as_secs_f64();
    let t_stop = record.step6_halt.expect("completed").as_secs_f64();
    // Frame analysis: the event is visible in the first frame *after* it
    // happens.
    let frame_of = |t: f64| (t / period).ceil() * period;
    Fig10 {
        true_detection_to_stop_s: t_stop - t_detect,
        frame_measured_s: frame_of(t_stop) - frame_of(t_detect),
        frame_period_s: period,
        detected_at_m: record.detection_distance_m.expect("completed"),
        action_point_m: base.action_point_m,
    }
}

/// Renders the paper's Table I (cause codes) from the message library's
/// data and verifies the codes round-trip through the codec.
pub fn table1() -> String {
    let mut out = String::from("TABLE I: Some available cause codes (EN 302 637-3)\n");
    out.push_str("cause  sub  description\n");
    for &(cause, sub, desc) in TABLE_I_ROWS {
        let cc = its_messages::cause_codes::CauseCode::from_codes(cause, sub);
        debug_assert_eq!(cc.cause_code(), cause);
        out.push_str(&format!("{cause:>5}  {sub:>3}  {desc}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Runner;

    fn quick_config() -> ScenarioConfig {
        ScenarioConfig {
            seed: 100,
            ..ScenarioConfig::default()
        }
    }

    fn exec() -> Runner {
        Runner::from_env()
    }

    #[test]
    fn table2_shape_matches_paper() {
        let t = table2(&exec(), &quick_config(), 5);
        // Row structure.
        assert_eq!(t.total.len(), 5);
        // Shape claims from the paper: the radio hop is the smallest
        // component by an order of magnitude …
        let m23 = mean(&t.interval_2_3);
        let m34 = mean(&t.interval_3_4);
        let m45 = mean(&t.interval_4_5);
        assert!(m34 < 6.0, "radio hop small: {m34}");
        assert!(
            m23 > 5.0 * m34,
            "detection→send dominates radio: {m23} vs {m34}"
        );
        assert!(m45 > 5.0 * m34, "polling dominates radio: {m45} vs {m34}");
        // … and the total stays under 100 ms in every run.
        for &x in &t.total {
            assert!(x < 100.0, "total {x}");
        }
        // Totals are consistent with the row sums (same clocks).
        for i in 0..5 {
            let sum = t.interval_2_3[i] + t.interval_3_4[i] + t.interval_4_5[i];
            assert!((sum - t.total[i]).abs() < 1e-9);
        }
        let rendered = t.render();
        assert!(rendered.contains("TABLE II"));
        assert!(rendered.contains("Total Delay"));
    }

    #[test]
    fn table2_averages_near_paper_values() {
        let t = table2(&exec(), &quick_config(), 30);
        let m23 = mean(&t.interval_2_3);
        let m34 = mean(&t.interval_3_4);
        let m45 = mean(&t.interval_4_5);
        let mtot = mean(&t.total);
        // Paper: 27.6 / 1.6 / 29.2 / 58.4 — allow generous bands, the
        // claim is the shape, not the exact numbers.
        assert!((15.0..=40.0).contains(&m23), "m23 {m23}");
        assert!((0.5..=4.0).contains(&m34), "m34 {m34}");
        assert!((18.0..=40.0).contains(&m45), "m45 {m45}");
        assert!((40.0..=80.0).contains(&mtot), "mtot {mtot}");
    }

    #[test]
    fn fig11_edf_under_100ms() {
        let f = fig11(&exec(), &quick_config(), 10);
        assert_eq!(f.edf.len(), 10);
        assert!(f.edf.max() < 100.0);
        assert!(f.render().contains("FIG 11"));
    }

    #[test]
    fn table3_band_and_variance() {
        let t = table3(&exec(), &quick_config(), 7);
        assert_eq!(t.braking_m.len(), 7);
        for &b in &t.braking_m {
            assert!((0.25..=0.50).contains(&b), "braking {b}");
        }
        assert!(t.variance() < 0.01, "variance {}", t.variance());
        assert!(t.render().contains("TABLE III"));
    }

    #[test]
    fn fig10_frame_quantisation() {
        let f = fig10(&quick_config());
        assert!(f.true_detection_to_stop_s > 0.0);
        // Frame measurement is a multiple of the frame period.
        let frames = f.frame_measured_s / f.frame_period_s;
        assert!((frames - frames.round()).abs() < 1e-9);
        // And within one frame of the truth on each side.
        assert!((f.frame_measured_s - f.true_detection_to_stop_s).abs() <= f.frame_period_s);
        assert!(f.render().contains("FIG 10"));
    }

    #[test]
    fn table1_renders_all_rows() {
        let s = table1();
        assert!(s.contains("Crossing collision risk"));
        assert!(s.contains("AEB (Automatic Emergency braking) activated"));
        assert_eq!(s.lines().count(), 2 + TABLE_I_ROWS.len());
    }
}
