//! Versioned binary wire codec for [`RunRecord`].
//!
//! The shard protocol (DESIGN.md §10) ships run records between worker
//! and coordinator processes, so the record needs a stable, explicit
//! wire form. The codec follows the workspace's reference framing style
//! ([`geonet::bytesio`]): big-endian, panic-free, a failed read is a
//! typed error and never a panic.
//!
//! # Frame layout (version 3)
//!
//! ```text
//! u32  payload length          (length prefix, not counting itself)
//! u8   version                 (WIRE_VERSION = 3)
//! ...  fields in declaration order:
//!        Option<SimTime>       presence u8 (0|1) + u64 nanos
//!        Option<u64>/Option<f64> presence u8 + u64 (f64 via to_bits)
//!        f64                   u64 (to_bits)
//!        bool                  u8 (0|1)
//!        u64                   u64
//!        Trace                 u32 count + events, each
//!                                u64 nanos + 3 × (u32 len + UTF-8 bytes)
//!        FaultStats            8 × u64 + 2 × bool (appended by v2)
//!        CoopStats             3 × u64 (appended by v3)
//! ```
//!
//! Decoding is strict: unknown version, presence, or bool bytes are
//! rejected, as are trailing bytes after the declared payload — a frame
//! either decodes to exactly the record that produced it or fails with a
//! [`WireError`].
//!
//! # Backward compatibility
//!
//! Version bumps only ever *append* fields, and the decoder keeps
//! accepting every older version it has shipped: a version-1 frame
//! (before the fault plane existed) decodes to a record whose
//! [`FaultStats`] counters are all zero — exactly what a faultless v1
//! run would have reported — and a version-2 frame (before the
//! cooperative layer) decodes with zeroed [`CoopStats`] the same way.
//! Versions newer than [`WIRE_VERSION`] are rejected.

use crate::scenario::RunRecord;
use faults::{CoopStats, FaultStats};
use geonet::bytesio::{ByteReader, ByteWriterExt};
use geonet::GeonetError;
use sim_core::{SimTime, Trace, TraceEvent};

/// Current wire format version; bumped on any layout change.
pub const WIRE_VERSION: u8 = 3;

/// Oldest version [`RunRecord::decode`] still accepts.
pub const MIN_WIRE_VERSION: u8 = 1;

/// Error produced when decoding a [`RunRecord`] frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the frame was complete.
    Truncated {
        /// Bytes needed by the failed read.
        needed: usize,
        /// Bytes actually remaining.
        remaining: usize,
    },
    /// The version byte names a layout this build does not know.
    UnsupportedVersion(u8),
    /// A presence byte was neither 0 nor 1.
    BadPresence(u8),
    /// A bool byte was neither 0 nor 1.
    BadBool(u8),
    /// Bytes left over after the declared structure.
    TrailingBytes(usize),
    /// A string field was not valid UTF-8.
    BadUtf8,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated { needed, remaining } => write!(
                f,
                "truncated record frame: needed {needed} bytes, {remaining} remaining"
            ),
            WireError::UnsupportedVersion(v) => write!(f, "unsupported wire version {v}"),
            WireError::BadPresence(b) => write!(f, "invalid option presence byte {b:#x}"),
            WireError::BadBool(b) => write!(f, "invalid bool byte {b:#x}"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after record"),
            WireError::BadUtf8 => write!(f, "trace string is not valid UTF-8"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<GeonetError> for WireError {
    fn from(e: GeonetError) -> Self {
        match e {
            GeonetError::Truncated { needed, remaining } => {
                WireError::Truncated { needed, remaining }
            }
            // ByteReader only ever reports truncation; the arm exists
            // because GeonetError is non_exhaustive.
            _ => WireError::Truncated {
                needed: 0,
                remaining: 0,
            },
        }
    }
}

fn put_bool(out: &mut Vec<u8>, v: bool) {
    out.put_u8(u8::from(v));
}

fn put_opt_u64(out: &mut Vec<u8>, v: Option<u64>) {
    match v {
        Some(x) => {
            out.put_u8(1);
            out.put_u64(x);
        }
        None => out.put_u8(0),
    }
}

fn put_opt_time(out: &mut Vec<u8>, v: Option<SimTime>) {
    put_opt_u64(out, v.map(|t| t.as_nanos()));
}

fn put_opt_f64(out: &mut Vec<u8>, v: Option<f64>) {
    put_opt_u64(out, v.map(f64::to_bits));
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.put_u32(s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn get_bool(r: &mut ByteReader<'_>) -> Result<bool, WireError> {
    match r.u8()? {
        0 => Ok(false),
        1 => Ok(true),
        b => Err(WireError::BadBool(b)),
    }
}

fn get_opt_u64(r: &mut ByteReader<'_>) -> Result<Option<u64>, WireError> {
    match r.u8()? {
        0 => Ok(None),
        1 => Ok(Some(r.u64()?)),
        b => Err(WireError::BadPresence(b)),
    }
}

fn get_opt_time(r: &mut ByteReader<'_>) -> Result<Option<SimTime>, WireError> {
    Ok(get_opt_u64(r)?.map(SimTime::from_nanos))
}

fn get_opt_f64(r: &mut ByteReader<'_>) -> Result<Option<f64>, WireError> {
    Ok(get_opt_u64(r)?.map(f64::from_bits))
}

fn get_str(r: &mut ByteReader<'_>) -> Result<String, WireError> {
    let len = r.u32()? as usize;
    let bytes = r.take(len)?;
    String::from_utf8(bytes.to_vec()).map_err(|_| WireError::BadUtf8)
}

fn put_fault_stats(out: &mut Vec<u8>, s: &FaultStats) {
    out.put_u64(s.injected);
    out.put_u64(s.frames_corrupted);
    out.put_u64(s.corrupted_rejected);
    out.put_u64(s.http_stalls);
    out.put_u64(s.http_giveups);
    out.put_u64(s.watchdog_speed_caps);
    out.put_u64(s.watchdog_stops);
    out.put_u64(s.watchdog_recoveries);
    put_bool(out, s.failsafe_stop);
    put_bool(out, s.overran_camera);
}

fn put_coop_stats(out: &mut Vec<u8>, s: &CoopStats) {
    out.put_u64(s.cascade_depth);
    out.put_u64(s.cpm_extended_detections);
    out.put_u64(s.failsafe_stops);
}

fn get_coop_stats(r: &mut ByteReader<'_>) -> Result<CoopStats, WireError> {
    Ok(CoopStats {
        cascade_depth: r.u64()?,
        cpm_extended_detections: r.u64()?,
        failsafe_stops: r.u64()?,
    })
}

fn get_fault_stats(r: &mut ByteReader<'_>) -> Result<FaultStats, WireError> {
    Ok(FaultStats {
        injected: r.u64()?,
        frames_corrupted: r.u64()?,
        corrupted_rejected: r.u64()?,
        http_stalls: r.u64()?,
        http_giveups: r.u64()?,
        watchdog_speed_caps: r.u64()?,
        watchdog_stops: r.u64()?,
        watchdog_recoveries: r.u64()?,
        failsafe_stop: get_bool(r)?,
        overran_camera: get_bool(r)?,
    })
}

impl RunRecord {
    /// Encodes the record as one self-delimiting frame: a `u32` length
    /// prefix followed by a versioned payload. Frames can be written
    /// back to back on a stream and decoded with [`RunRecord::decode_from`].
    pub fn encode(&self) -> Vec<u8> {
        let mut p = Vec::with_capacity(256);
        p.put_u8(WIRE_VERSION);
        put_opt_time(&mut p, self.step1_crossing);
        put_opt_time(&mut p, self.step2_detection);
        put_opt_u64(&mut p, self.step2_wall_ms);
        put_opt_time(&mut p, self.step3_rsu_send);
        put_opt_u64(&mut p, self.step3_wall_ms);
        put_opt_time(&mut p, self.step4_obu_recv);
        put_opt_u64(&mut p, self.step4_wall_ms);
        put_opt_time(&mut p, self.step5_actuation);
        put_opt_u64(&mut p, self.step5_wall_ms);
        put_opt_time(&mut p, self.step6_halt);
        put_opt_f64(&mut p, self.odometer_at_detection_m);
        put_opt_f64(&mut p, self.odometer_at_halt_m);
        p.put_u64(self.speed_at_detection_mps.to_bits());
        put_opt_f64(&mut p, self.halt_distance_to_camera_m);
        put_opt_f64(&mut p, self.detection_distance_m);
        put_bool(&mut p, self.denm_delivered);
        p.put_u64(self.cams_received);
        p.put_u64(self.events_dispatched);
        p.put_u32(self.trace.events().len() as u32);
        for e in self.trace.events() {
            p.put_u64(e.time.as_nanos());
            put_str(&mut p, &e.node);
            put_str(&mut p, &e.kind);
            put_str(&mut p, &e.detail);
        }
        put_fault_stats(&mut p, &self.fault);
        put_coop_stats(&mut p, &self.coop);
        let mut out = Vec::with_capacity(p.len() + 4);
        out.put_u32(p.len() as u32);
        out.extend_from_slice(&p);
        out
    }

    /// Decodes one frame that must span the whole buffer exactly.
    pub fn decode(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = ByteReader::new(bytes);
        let record = Self::decode_from(&mut r)?;
        if r.remaining() != 0 {
            return Err(WireError::TrailingBytes(r.remaining()));
        }
        Ok(record)
    }

    /// Decodes one frame from the reader's current position, leaving the
    /// reader just past it — the streaming form the shard coordinator
    /// uses to peel consecutive records off a worker's pipe.
    pub fn decode_from(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        let len = r.u32()? as usize;
        let payload = r.take(len)?;
        let mut p = ByteReader::new(payload);
        let version = p.u8()?;
        if !(MIN_WIRE_VERSION..=WIRE_VERSION).contains(&version) {
            return Err(WireError::UnsupportedVersion(version));
        }
        let step1_crossing = get_opt_time(&mut p)?;
        let step2_detection = get_opt_time(&mut p)?;
        let step2_wall_ms = get_opt_u64(&mut p)?;
        let step3_rsu_send = get_opt_time(&mut p)?;
        let step3_wall_ms = get_opt_u64(&mut p)?;
        let step4_obu_recv = get_opt_time(&mut p)?;
        let step4_wall_ms = get_opt_u64(&mut p)?;
        let step5_actuation = get_opt_time(&mut p)?;
        let step5_wall_ms = get_opt_u64(&mut p)?;
        let step6_halt = get_opt_time(&mut p)?;
        let odometer_at_detection_m = get_opt_f64(&mut p)?;
        let odometer_at_halt_m = get_opt_f64(&mut p)?;
        let speed_at_detection_mps = f64::from_bits(p.u64()?);
        let halt_distance_to_camera_m = get_opt_f64(&mut p)?;
        let detection_distance_m = get_opt_f64(&mut p)?;
        let denm_delivered = get_bool(&mut p)?;
        let cams_received = p.u64()?;
        let events_dispatched = p.u64()?;
        let n_events = p.u32()? as usize;
        // No with_capacity on the untrusted count: a lying header runs
        // into Truncated within one event's minimum size.
        let mut trace = Trace::new();
        for _ in 0..n_events {
            let time = SimTime::from_nanos(p.u64()?);
            let node = get_str(&mut p)?;
            let kind = get_str(&mut p)?;
            let detail = get_str(&mut p)?;
            trace.extend([TraceEvent {
                time,
                node: &node,
                kind: &kind,
                detail: &detail,
            }]);
        }
        // Version 1 predates the fault plane; its records decode with
        // zeroed counters, the values a faultless run reports.
        let fault = if version >= 2 {
            get_fault_stats(&mut p)?
        } else {
            FaultStats::default()
        };
        // Version 2 predates the cooperative layer; its records decode
        // with zeroed coop counters.
        let coop = if version >= 3 {
            get_coop_stats(&mut p)?
        } else {
            CoopStats::default()
        };
        if p.remaining() != 0 {
            return Err(WireError::TrailingBytes(p.remaining()));
        }
        Ok(RunRecord {
            step1_crossing,
            step2_detection,
            step2_wall_ms,
            step3_rsu_send,
            step3_wall_ms,
            step4_obu_recv,
            step4_wall_ms,
            step5_actuation,
            step5_wall_ms,
            step6_halt,
            odometer_at_detection_m,
            odometer_at_halt_m,
            speed_at_detection_mps,
            halt_distance_to_camera_m,
            detection_distance_m,
            denm_delivered,
            cams_received,
            events_dispatched,
            trace,
            fault,
            coop,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{Scenario, ScenarioConfig};
    use proptest::prelude::*;

    fn sample_record() -> RunRecord {
        Scenario::run_seeded(
            &ScenarioConfig {
                seed: 4242,
                ..ScenarioConfig::default()
            },
            3,
        )
    }

    fn records_bitwise_equal(a: &RunRecord, b: &RunRecord) -> bool {
        a.encode() == b.encode()
    }

    #[test]
    fn real_record_roundtrips_bitwise() {
        let record = sample_record();
        let bytes = record.encode();
        let back = RunRecord::decode(&bytes).unwrap();
        assert!(records_bitwise_equal(&record, &back));
        assert_eq!(record.trace.digest(), back.trace.digest());
        assert_eq!(
            record.speed_at_detection_mps.to_bits(),
            back.speed_at_detection_mps.to_bits()
        );
    }

    #[test]
    fn frames_stream_back_to_back() {
        let a = sample_record();
        let b = Scenario::run_seeded(&ScenarioConfig::default(), 9);
        let mut stream = a.encode();
        stream.extend_from_slice(&b.encode());
        let mut r = ByteReader::new(&stream);
        let a2 = RunRecord::decode_from(&mut r).unwrap();
        let b2 = RunRecord::decode_from(&mut r).unwrap();
        assert_eq!(r.remaining(), 0);
        assert!(records_bitwise_equal(&a, &a2));
        assert!(records_bitwise_equal(&b, &b2));
    }

    #[test]
    fn unknown_version_rejected() {
        let mut bytes = sample_record().encode();
        bytes[4] = 99; // version byte sits right after the length prefix
        assert_eq!(
            RunRecord::decode(&bytes),
            Err(WireError::UnsupportedVersion(99))
        );
        bytes[4] = 0; // version 0 never shipped
        assert_eq!(
            RunRecord::decode(&bytes),
            Err(WireError::UnsupportedVersion(0))
        );
    }

    /// A frame captured verbatim from the version-1 encoder (the build
    /// immediately before the fault plane landed). The compat rule under
    /// test: old frames keep decoding, with zeroed fault counters.
    const V1_FRAME: &[u8] = &[
        0x00, 0x00, 0x00, 0xf1, 0x01, 0x01, 0x00, 0x00, 0x00, 0x00, 0x62, 0x86, 0xc7, 0x40, 0x01,
        0x00, 0x00, 0x00, 0x00, 0x65, 0x53, 0xf1, 0x00, 0x01, 0x00, 0x00, 0x00, 0x00, 0x3b, 0x9a,
        0xd0, 0xa4, 0x01, 0x00, 0x00, 0x00, 0x00, 0x68, 0xe7, 0x78, 0x00, 0x01, 0x00, 0x00, 0x00,
        0x00, 0x3b, 0x9a, 0xd0, 0xe0, 0x01, 0x00, 0x00, 0x00, 0x00, 0x69, 0x33, 0xc3, 0x40, 0x01,
        0x00, 0x00, 0x00, 0x00, 0x3b, 0x9a, 0xd0, 0xe5, 0x01, 0x00, 0x00, 0x00, 0x00, 0x6a, 0xb1,
        0x3b, 0x80, 0x01, 0x00, 0x00, 0x00, 0x00, 0x3b, 0x9a, 0xd0, 0xfe, 0x01, 0x00, 0x00, 0x00,
        0x00, 0x89, 0x17, 0x37, 0x00, 0x01, 0x40, 0x04, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x01,
        0x40, 0x0b, 0x33, 0x33, 0x33, 0x33, 0x33, 0x33, 0x3f, 0xf8, 0x00, 0x00, 0x00, 0x00, 0x00,
        0x00, 0x01, 0x3f, 0xe3, 0x33, 0x33, 0x33, 0x33, 0x33, 0x33, 0x01, 0x3f, 0xf7, 0xae, 0x14,
        0x7a, 0xe1, 0x47, 0xae, 0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x21, 0x00, 0x00,
        0x00, 0x00, 0x00, 0x00, 0x01, 0x9c, 0x00, 0x00, 0x00, 0x02, 0x00, 0x00, 0x00, 0x00, 0x65,
        0x53, 0xf1, 0x00, 0x00, 0x00, 0x00, 0x04, 0x65, 0x64, 0x67, 0x65, 0x00, 0x00, 0x00, 0x05,
        0x73, 0x74, 0x65, 0x70, 0x32, 0x00, 0x00, 0x00, 0x11, 0x64, 0x65, 0x74, 0x65, 0x63, 0x74,
        0x69, 0x6f, 0x6e, 0x20, 0x64, 0x65, 0x63, 0x69, 0x64, 0x65, 0x64, 0x00, 0x00, 0x00, 0x00,
        0x68, 0xe7, 0x78, 0x00, 0x00, 0x00, 0x00, 0x03, 0x72, 0x73, 0x75, 0x00, 0x00, 0x00, 0x05,
        0x73, 0x74, 0x65, 0x70, 0x33, 0x00, 0x00, 0x00, 0x0b, 0x64, 0x65, 0x6e, 0x6d, 0x20, 0x6f,
        0x6e, 0x20, 0x61, 0x69, 0x72,
    ];

    /// The record the captured v1 frame was produced from.
    fn v1_capture_record() -> RunRecord {
        let mut trace = Trace::new();
        trace.record(
            SimTime::from_millis(1700),
            "edge",
            "step2",
            "detection decided",
        );
        trace.record(SimTime::from_millis(1760), "rsu", "step3", "denm on air");
        RunRecord {
            step1_crossing: Some(SimTime::from_millis(1653)),
            step2_detection: Some(SimTime::from_millis(1700)),
            step2_wall_ms: Some(1_000_001_700),
            step3_rsu_send: Some(SimTime::from_millis(1760)),
            step3_wall_ms: Some(1_000_001_760),
            step4_obu_recv: Some(SimTime::from_millis(1765)),
            step4_wall_ms: Some(1_000_001_765),
            step5_actuation: Some(SimTime::from_millis(1790)),
            step5_wall_ms: Some(1_000_001_790),
            step6_halt: Some(SimTime::from_millis(2300)),
            odometer_at_detection_m: Some(2.55),
            odometer_at_halt_m: Some(3.4),
            speed_at_detection_mps: 1.5,
            halt_distance_to_camera_m: Some(0.6),
            detection_distance_m: Some(1.48),
            denm_delivered: true,
            cams_received: 33,
            events_dispatched: 412,
            trace,
            fault: FaultStats::default(),
            coop: CoopStats::default(),
        }
    }

    /// Size of the fault-stats tail version 2 appended to v1 frames.
    const V2_TAIL: usize = 8 * 8 + 2; // 8 u64 counters + 2 bools

    /// Size of the coop-stats tail version 3 appends to v2 frames.
    const V3_TAIL: usize = 3 * 8; // 3 u64 counters

    /// The captured v1 frame re-framed as the version-2 encoder wrote
    /// it: length prefix grown by the fault-stats tail, version byte
    /// bumped, zeroed tail appended. Byte-for-byte what the v2 build
    /// produced for the captured record, synthesized instead of
    /// captured because v2 was defined as exactly this append.
    fn v2_frame() -> Vec<u8> {
        let payload_len = (V1_FRAME.len() - 4 + V2_TAIL) as u32;
        let mut frame = Vec::with_capacity(V1_FRAME.len() + V2_TAIL);
        frame.extend_from_slice(&payload_len.to_be_bytes());
        frame.push(2);
        frame.extend_from_slice(&V1_FRAME[5..]);
        frame.extend(std::iter::repeat(0).take(V2_TAIL));
        frame
    }

    #[test]
    fn version1_frame_decodes_with_zeroed_fault_counters() {
        assert_eq!(V1_FRAME[4], 1, "captured frame must be version 1");
        let record = RunRecord::decode(V1_FRAME).expect("v1 frame must keep decoding");
        assert_eq!(record.fault, FaultStats::default());
        assert_eq!(record, v1_capture_record());
    }

    #[test]
    fn version1_frame_truncation_still_fails_cleanly() {
        for cut in 0..V1_FRAME.len() {
            assert!(RunRecord::decode(&V1_FRAME[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn version2_frame_decodes_with_zeroed_coop_counters() {
        let v2 = v2_frame();
        assert_eq!(v2[4], 2, "synthetic frame must be version 2");
        let record = RunRecord::decode(&v2).expect("v2 frame must keep decoding");
        assert_eq!(record.coop, CoopStats::default());
        assert_eq!(record, v1_capture_record());
    }

    #[test]
    fn version2_frame_truncation_still_fails_cleanly() {
        let v2 = v2_frame();
        for cut in 0..v2.len() {
            assert!(RunRecord::decode(&v2[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn version3_appends_coop_stats_after_v2_layout() {
        // Re-encoding the captured record under the current version must
        // produce the v2 bytes (with the version byte bumped) followed by
        // exactly the coop-stats tail — the append-only compat rule,
        // applied once per version bump.
        let v2 = v2_frame();
        let v3 = v1_capture_record().encode();
        assert_eq!(v3.len(), v2.len() + V3_TAIL);
        assert_eq!(v3.len(), V1_FRAME.len() + V2_TAIL + V3_TAIL);
        assert_eq!(v3[4], WIRE_VERSION);
        assert_eq!(&v3[5..v2.len()], &v2[5..]);
        assert!(v3[v2.len()..].iter().all(|&b| b == 0));
    }

    #[test]
    fn fault_stats_roundtrip_bitwise() {
        let mut record = sample_record();
        record.fault = FaultStats {
            injected: 17,
            frames_corrupted: 5,
            corrupted_rejected: 4,
            http_stalls: 3,
            http_giveups: 1,
            watchdog_speed_caps: 2,
            watchdog_stops: 1,
            watchdog_recoveries: 1,
            failsafe_stop: true,
            overran_camera: false,
        };
        record.coop = CoopStats {
            cascade_depth: 3,
            cpm_extended_detections: 12,
            failsafe_stops: 2,
        };
        let back = RunRecord::decode(&record.encode()).unwrap();
        assert_eq!(back.fault, record.fault);
        assert_eq!(back.coop, record.coop);
        assert!(records_bitwise_equal(&record, &back));
    }

    #[test]
    fn bad_presence_and_trailing_bytes_rejected() {
        let mut bytes = sample_record().encode();
        bytes[5] = 7; // first presence byte
        assert_eq!(RunRecord::decode(&bytes), Err(WireError::BadPresence(7)));

        let mut padded = sample_record().encode();
        padded.push(0);
        // The extra byte is outside the declared payload.
        assert_eq!(RunRecord::decode(&padded), Err(WireError::TrailingBytes(1)));
    }

    proptest! {
        #[test]
        fn truncation_never_panics(cut in 0usize..4096) {
            let bytes = sample_record().encode();
            let cut = cut.min(bytes.len().saturating_sub(1));
            // Every strict prefix must fail cleanly — never panic, never
            // produce a record from partial data.
            prop_assert!(RunRecord::decode(&bytes[..cut]).is_err());
        }

        #[test]
        fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
            let _ = RunRecord::decode(&bytes);
            let mut r = ByteReader::new(&bytes);
            let _ = RunRecord::decode_from(&mut r);
        }

        #[test]
        fn corrupted_byte_never_panics(flip in 0usize..4096, xor in 1u8..=255) {
            let mut bytes = sample_record().encode();
            let flip = flip % bytes.len();
            bytes[flip] ^= xor;
            // Either a clean error or a decode of the corrupted frame —
            // never a panic.
            let _ = RunRecord::decode(&bytes);
        }

        #[test]
        fn option_and_float_fields_roundtrip(
            has_halt in any::<bool>(),
            wall in proptest::option::of(any::<u64>()),
            odo in proptest::option::of(-1e9f64..1e9),
            speed in -1e6f64..1e6,
            delivered in any::<bool>(),
        ) {
            let mut record = sample_record();
            record.step6_halt = if has_halt { record.step6_halt } else { None };
            record.step5_wall_ms = wall;
            record.odometer_at_halt_m = odo;
            record.speed_at_detection_mps = speed;
            record.denm_delivered = delivered;
            let back = RunRecord::decode(&record.encode()).unwrap();
            prop_assert_eq!(back.step5_wall_ms, record.step5_wall_ms);
            prop_assert_eq!(
                back.odometer_at_halt_m.map(f64::to_bits),
                record.odometer_at_halt_m.map(f64::to_bits)
            );
            prop_assert_eq!(
                back.speed_at_detection_mps.to_bits(),
                record.speed_at_detection_mps.to_bits()
            );
            prop_assert_eq!(back.denm_delivered, record.denm_delivered);
            prop_assert!(records_bitwise_equal(&record, &back));
        }
    }
}
