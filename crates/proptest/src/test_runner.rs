//! Deterministic case scheduling for [`proptest!`](crate::proptest).

/// Default number of cases each property runs. Override with the
/// `PROPTEST_CASES` environment variable.
pub const CASES: u64 = 64;

/// Number of cases to run, honouring `PROPTEST_CASES` when set.
pub fn cases() -> u64 {
    match std::env::var("PROPTEST_CASES") {
        Ok(v) => v.parse().unwrap_or(CASES),
        Err(_) => CASES,
    }
}

/// A splitmix64 stream seeded purely by the case index, so case `n` of
/// any property draws the same inputs on every run and machine.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// The generator for case `case`.
    pub fn for_case(case: u64) -> Self {
        // A fixed golden-ratio offset keeps case 0 away from the
        // all-zeros state.
        TestRng {
            state: case.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD1B5_4A32_D192_ED03,
        }
    }

    /// Next raw 64-bit value (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next raw 128-bit value (two splitmix64 draws).
    pub fn next_u128(&mut self) -> u128 {
        (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64())
    }

    /// Uniform `f64` in `[0, 1]` (inclusive of both ends at the 53-bit
    /// resolution used here).
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64
    }
}

/// Why a property case did not pass: a genuine failure (fails the test)
/// or a rejected precondition from
/// [`prop_assume!`](crate::prop_assume) (skips the case).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
    rejection: bool,
}

impl TestCaseError {
    /// A failing case with a diagnostic message.
    pub fn fail(message: String) -> Self {
        TestCaseError {
            message,
            rejection: false,
        }
    }

    /// A rejected (skipped) case.
    pub fn reject() -> Self {
        TestCaseError {
            message: "precondition rejected".to_owned(),
            rejection: true,
        }
    }

    /// Whether this is a rejection rather than a failure.
    pub fn is_rejection(&self) -> bool {
        self.rejection
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}
