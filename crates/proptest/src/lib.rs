//! A small, deterministic, dependency-free stand-in for the `proptest`
//! property-testing crate.
//!
//! The testbed workspace must build and test in fully offline
//! environments (no crates.io index), so this crate re-implements the
//! narrow slice of the `proptest` API the workspace's property tests
//! actually use:
//!
//! * the [`proptest!`] macro with `ident in strategy` bindings,
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`] /
//!   [`prop_assume!`],
//! * range strategies (`0u64..100`, `-1i8..=14`, `0.0f64..1.0`),
//! * [`strategy::Any`] via `any::<T>()` for primitive types,
//! * [`collection::vec`], [`option::of`], tuple strategies and
//!   [`strategy::Just`].
//!
//! Unlike upstream proptest, case generation here is *deterministic by
//! construction*: every test draws its inputs from a splitmix64 stream
//! seeded only by the case index, so a failing case reproduces on every
//! run and on every machine — the same reproducibility contract the rest
//! of the testbed enforces (see `crates/detlint`). There is no shrinking;
//! the failing values are printed instead.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

pub mod strategy;
pub mod test_runner;

/// `vec`-building strategies, mirroring `proptest::collection`.
pub mod collection {
    use crate::strategy::{SizeBound, Strategy, VecStrategy};

    /// A strategy producing `Vec<S::Value>` with a length drawn from
    /// `size` and elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeBound>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// `Option`-building strategies, mirroring `proptest::option`.
pub mod option {
    use crate::strategy::{OptionStrategy, Strategy};

    /// A strategy producing `None` roughly a quarter of the time and
    /// `Some(inner)` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

/// The common imports property tests bring into scope.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests: `proptest! { #[test] fn name(x in strat) { … } }`.
///
/// Each generated `#[test]` runs [`test_runner::CASES`] deterministic
/// cases; the body may use the `prop_assert*` macros, which abort only
/// the failing case with a diagnostic that includes the drawn values.
#[macro_export]
macro_rules! proptest {
    () => {};
    ($(#[$meta:meta])* fn $name:ident($($var:ident in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            for __case in 0..$crate::test_runner::cases() {
                let mut __rng = $crate::test_runner::TestRng::for_case(__case);
                $(let $var = $crate::strategy::Strategy::sample(&$strat, &mut __rng);)+
                let __outcome = {
                    $(let $var = ::core::clone::Clone::clone(&$var);)+
                    (move || -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        Ok(())
                    })()
                };
                match __outcome {
                    Ok(()) => {}
                    Err(e) if e.is_rejection() => continue,
                    Err(e) => panic!(
                        "property failed at case {}/{}: {}\n  inputs: {}",
                        __case,
                        $crate::test_runner::cases(),
                        e,
                        {
                            let mut __s = ::std::string::String::new();
                            $(__s.push_str(&format!("{} = {:?}; ", stringify!($var), $var));)+
                            __s
                        }
                    ),
                }
            }
        }
        $crate::proptest! { $($rest)* }
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the case
/// (not the whole process) with the formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts two expressions are equal inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Asserts two expressions differ inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left), stringify!($right), l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, $($fmt)*);
    }};
}

/// Skips the current case when its inputs do not satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in -4i8..=4, f in 0.5f64..2.5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-4..=4).contains(&y));
            prop_assert!((0.5..2.5).contains(&f));
        }

        #[test]
        fn vec_respects_size_and_elements(v in crate::collection::vec(any::<u8>(), 2..9)) {
            prop_assert!((2..9).contains(&v.len()));
        }

        #[test]
        fn option_of_produces_both(o in crate::option::of(1u32..5)) {
            if let Some(x) = o {
                prop_assert!((1..5).contains(&x));
            }
        }

        #[test]
        fn tuples_sample_componentwise(t in (any::<u16>(), 0u32..=3)) {
            prop_assert!(t.1 <= 3);
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u64..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn cases_are_deterministic_across_runners() {
        use crate::strategy::{any, Strategy};
        let mut a = crate::test_runner::TestRng::for_case(7);
        let mut b = crate::test_runner::TestRng::for_case(7);
        for _ in 0..32 {
            assert_eq!(any::<u64>().sample(&mut a), any::<u64>().sample(&mut b));
        }
    }
}
