//! Value-generation strategies.
//!
//! A [`Strategy`] deterministically maps a [`TestRng`] position to a
//! value. Ranges, `any::<T>()`, tuples, `Vec`s and `Option`s are enough
//! for every property test in the workspace.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A source of generated values for one bound variable in a
/// [`proptest!`](crate::proptest) binding.
pub trait Strategy {
    /// The type of generated values.
    type Value;
    /// Draws one value from `rng`.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

/// A strategy that always yields a clone of the same value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Marker strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// A strategy over the full domain of a primitive type, mirroring
/// `proptest::arbitrary::any`.
pub fn any<T>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

macro_rules! impl_any_uint {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_any_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Strategy for Any<char> {
    type Value = char;
    fn sample(&self, rng: &mut TestRng) -> char {
        // Bias towards ASCII, but cover the whole scalar-value space.
        if rng.next_u64() % 4 != 0 {
            (b' ' + (rng.next_u64() % 95) as u8) as char
        } else {
            char::from_u32((rng.next_u64() % 0x11_0000) as u32).unwrap_or('\u{FFFD}')
        }
    }
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u128() % span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u128() % span) as i128) as $t
            }
        }
    )*};
}
impl_int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (self.end - self.start) * rng.unit_f64() as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                lo + (hi - lo) * rng.unit_f64() as $t
            }
        }
    )*};
}
impl_float_ranges!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}
impl_tuple_strategy!((A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3),);

/// String strategies are written as regex literals in upstream proptest.
/// This shim interprets exactly the subset the workspace uses: a pattern
/// `\PC{lo,hi}` yields `lo..=hi` printable characters (mostly ASCII,
/// with occasional multi-byte scalars so UTF-8 length handling is
/// exercised), and a pattern with no regex metacharacters yields itself.
impl Strategy for &str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        const MULTIBYTE: [char; 6] = ['é', 'ß', '→', '°', '文', '😀'];
        // detlint:allow(R2) test-only generator; draw count is a function of the static pattern
        if let Some(rest) = self.strip_prefix("\\PC{") {
            let (bounds, tail) = rest
                .split_once('}')
                .unwrap_or_else(|| panic!("unsupported string pattern {self:?}"));
            assert!(tail.is_empty(), "unsupported string pattern {self:?}");
            let (lo, hi) = bounds
                .split_once(',')
                .unwrap_or_else(|| panic!("unsupported string pattern {self:?}"));
            let lo: u64 = lo.trim().parse().expect("bad repetition bound");
            let hi: u64 = hi.trim().parse().expect("bad repetition bound");
            let len = lo + rng.next_u64() % (hi - lo + 1);
            return (0..len)
                .map(|_| {
                    if rng.next_u64() % 8 == 0 {
                        MULTIBYTE[(rng.next_u64() % MULTIBYTE.len() as u64) as usize]
                    } else {
                        (b' ' + (rng.next_u64() % 95) as u8) as char
                    }
                })
                .collect();
        }
        assert!(
            !self.contains(['\\', '[', '{', '*', '+', '?', '(', '|', '.']),
            "unsupported string pattern {self:?}"
        );
        (*self).to_owned()
    }
}

/// Length bound accepted by [`collection::vec`](crate::collection::vec).
#[derive(Debug, Clone)]
pub struct SizeBound {
    lo: usize,
    hi_exclusive: usize,
}

impl From<usize> for SizeBound {
    fn from(n: usize) -> Self {
        SizeBound {
            lo: n,
            hi_exclusive: n + 1,
        }
    }
}

impl From<Range<usize>> for SizeBound {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeBound {
            lo: r.start,
            hi_exclusive: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeBound {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeBound {
            lo: *r.start(),
            hi_exclusive: *r.end() + 1,
        }
    }
}

/// Strategy for `Vec`s; see [`collection::vec`](crate::collection::vec).
#[derive(Debug, Clone)]
pub struct VecStrategy<S: Strategy> {
    pub(crate) element: S,
    pub(crate) size: SizeBound,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi_exclusive - self.size.lo) as u64;
        let len = self.size.lo + (rng.next_u64() % span.max(1)) as usize;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// Strategy for `Option`s; see [`option::of`](crate::option::of).
#[derive(Debug, Clone)]
pub struct OptionStrategy<S: Strategy> {
    pub(crate) inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.next_u64() % 4 == 0 {
            None
        } else {
            Some(self.inner.sample(rng))
        }
    }
}
