//! GeoNetworking Location Table and duplicate packet detection
//! (EN 302 636-4-1 §8.1 and Annex A.2).
//!
//! Every GeoNetworking router keeps a Location Table with one entry per
//! known ITS station (from the position vectors of received packets) and
//! performs duplicate packet detection on GeoBroadcast traffic using the
//! `(source address, sequence number)` pair, so a forwarded or repeated
//! GBC packet is processed only once.

use crate::position::{GnAddress, LongPositionVector};

/// One Location Table entry.
#[derive(Debug, Clone, PartialEq)]
pub struct LocTableEntry {
    /// The station's GeoNetworking address.
    pub address: GnAddress,
    /// Most recent position vector heard from it.
    pub position: LongPositionVector,
    /// Wall timestamp (ms) of the last update.
    pub updated_ms: u64,
    /// Greatest GBC sequence number seen (for duplicate detection).
    last_sequence: Option<u16>,
    /// Packets received from this source.
    pub packets: u64,
}

/// The Location Table of one GeoNetworking router.
///
/// # Example
///
/// ```
/// use geonet::loctable::LocationTable;
/// use geonet::{GnAddress, LongPositionVector};
///
/// let mut table = LocationTable::new(1_000);
/// let pv = LongPositionVector::new(GnAddress::new(7), 100, 41.178, -8.608, 1.5, 90.0);
/// table.update(pv, 100);
/// assert_eq!(table.len(), 1);
/// // First copy of GBC sequence 5 is fresh; the second is a duplicate.
/// assert!(!table.is_duplicate(GnAddress::new(7), 5));
/// assert!(table.is_duplicate(GnAddress::new(7), 5));
/// ```
#[derive(Debug, Clone, Default)]
pub struct LocationTable {
    entries: Vec<LocTableEntry>,
    /// Entries older than this are purged by [`LocationTable::purge`].
    lifetime_ms: u64,
}

impl LocationTable {
    /// Creates a table with the given entry lifetime (EN 302 636-4-1
    /// default is 20 s).
    pub fn new(lifetime_ms: u64) -> Self {
        Self {
            entries: Vec::new(),
            lifetime_ms,
        }
    }

    /// Number of known stations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All entries, unspecified order.
    pub fn entries(&self) -> &[LocTableEntry] {
        &self.entries
    }

    /// The entry for `address`, if known.
    pub fn entry(&self, address: GnAddress) -> Option<&LocTableEntry> {
        self.entries.iter().find(|e| e.address == address)
    }

    /// Updates (or creates) the entry for the packet source.
    pub fn update(&mut self, position: LongPositionVector, now_ms: u64) {
        match self
            .entries
            .iter_mut()
            .find(|e| e.address == position.address)
        {
            Some(e) => {
                e.position = position;
                e.updated_ms = now_ms;
                e.packets += 1;
            }
            None => self.entries.push(LocTableEntry {
                address: position.address,
                position,
                updated_ms: now_ms,
                last_sequence: None,
                packets: 1,
            }),
        }
    }

    /// Duplicate packet detection for GBC traffic: returns `true` if
    /// `(source, sequence)` was already seen. Uses the standard serial-
    /// number comparison (RFC 1982-style half-window) so sequence
    /// wrap-around is handled.
    pub fn is_duplicate(&mut self, source: GnAddress, sequence: u16) -> bool {
        let entry = match self.entries.iter_mut().find(|e| e.address == source) {
            Some(e) => e,
            None => {
                // Unknown source: create a placeholder entry so the
                // sequence is remembered even before a position update.
                self.entries.push(LocTableEntry {
                    address: source,
                    position: LongPositionVector::new(source, 0, 0.0, 0.0, 0.0, 0.0),
                    updated_ms: 0,
                    last_sequence: Some(sequence),
                    packets: 0,
                });
                return false;
            }
        };
        match entry.last_sequence {
            None => {
                entry.last_sequence = Some(sequence);
                false
            }
            Some(last) => {
                // `sequence` is new iff it is "greater" than `last` in
                // serial-number arithmetic.
                let diff = sequence.wrapping_sub(last);
                let newer = diff != 0 && diff < 0x8000;
                if newer {
                    entry.last_sequence = Some(sequence);
                }
                !newer
            }
        }
    }

    /// Drops entries not refreshed within the lifetime. Returns how many
    /// were removed.
    pub fn purge(&mut self, now_ms: u64) -> usize {
        let before = self.entries.len();
        let lifetime = self.lifetime_ms;
        self.entries
            .retain(|e| now_ms.saturating_sub(e.updated_ms) <= lifetime);
        before - self.entries.len()
    }

    /// Stations heard within `radius_m` of a point (degrees), nearest
    /// first — the neighbourhood view used by forwarding algorithms.
    pub fn neighbours_within(
        &self,
        lat_deg: f64,
        lon_deg: f64,
        radius_m: f64,
    ) -> Vec<&LocTableEntry> {
        const EARTH_RADIUS_M: f64 = 6_371_000.0;
        let mut hits: Vec<(f64, &LocTableEntry)> = self
            .entries
            .iter()
            .filter_map(|e| {
                let dlat = (e.position.latitude_deg() - lat_deg).to_radians();
                let dlon = (e.position.longitude_deg() - lon_deg).to_radians()
                    * lat_deg.to_radians().cos();
                let d = EARTH_RADIUS_M * (dlat * dlat + dlon * dlon).sqrt();
                (d <= radius_m).then_some((d, e))
            })
            .collect();
        hits.sort_by(|a, b| a.0.total_cmp(&b.0));
        hits.into_iter().map(|(_, e)| e).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pv(mid: u64, lat: f64) -> LongPositionVector {
        LongPositionVector::new(GnAddress::new(mid), 0, lat, -8.608, 1.5, 90.0)
    }

    #[test]
    fn update_creates_then_refreshes() {
        let mut t = LocationTable::new(1000);
        t.update(pv(7, 41.178), 100);
        t.update(pv(7, 41.179), 200);
        assert_eq!(t.len(), 1);
        let e = t.entry(GnAddress::new(7)).unwrap();
        assert_eq!(e.packets, 2);
        assert_eq!(e.updated_ms, 200);
        assert!((e.position.latitude_deg() - 41.179).abs() < 1e-6);
    }

    #[test]
    fn duplicate_detection_basic() {
        let mut t = LocationTable::new(1000);
        t.update(pv(7, 41.178), 0);
        assert!(!t.is_duplicate(GnAddress::new(7), 1));
        assert!(t.is_duplicate(GnAddress::new(7), 1));
        assert!(!t.is_duplicate(GnAddress::new(7), 2));
        // An older sequence is also a duplicate.
        assert!(t.is_duplicate(GnAddress::new(7), 1));
    }

    #[test]
    fn duplicate_detection_handles_wraparound() {
        let mut t = LocationTable::new(1000);
        t.update(pv(7, 41.178), 0);
        assert!(!t.is_duplicate(GnAddress::new(7), 0xFFFE));
        assert!(!t.is_duplicate(GnAddress::new(7), 0xFFFF));
        // Wrap to 0: serially newer.
        assert!(!t.is_duplicate(GnAddress::new(7), 0));
        assert!(t.is_duplicate(GnAddress::new(7), 0xFFFF));
    }

    #[test]
    fn duplicate_from_unknown_source_creates_placeholder() {
        let mut t = LocationTable::new(1000);
        assert!(!t.is_duplicate(GnAddress::new(9), 3));
        assert!(t.is_duplicate(GnAddress::new(9), 3));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn purge_expires_stale_entries() {
        let mut t = LocationTable::new(1000);
        t.update(pv(1, 41.0), 0);
        t.update(pv(2, 41.1), 900);
        assert_eq!(t.purge(1500), 1);
        assert!(t.entry(GnAddress::new(1)).is_none());
        assert!(t.entry(GnAddress::new(2)).is_some());
    }

    #[test]
    fn neighbours_sorted_by_distance() {
        let m_per_deg = 111_194.9;
        let mut t = LocationTable::new(1000);
        t.update(pv(1, 41.178 + 30.0 / m_per_deg), 0);
        t.update(pv(2, 41.178 + 5.0 / m_per_deg), 0);
        t.update(pv(3, 41.178 + 500.0 / m_per_deg), 0);
        let near = t.neighbours_within(41.178, -8.608, 100.0);
        let ids: Vec<u64> = near.iter().map(|e| e.address.mid()).collect();
        assert_eq!(ids, vec![2, 1]);
    }
}
