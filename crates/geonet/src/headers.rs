//! GeoNetworking headers and full-packet assembly.
//!
//! A packet on the air is `BasicHeader | CommonHeader | ExtendedHeader |
//! BTP-B | facilities payload`. The testbed uses two extended headers:
//! Single-Hop Broadcast (SHB) for CAMs and GeoBroadcast (GBC) for DENMs.

use crate::area::GeoArea;
use crate::btp::{BtpB, BtpPort};
use crate::bytesio::{ByteReader, ByteWriterExt};
use crate::error::GeonetError;
use crate::position::LongPositionVector;
use crate::Result;

/// GeoNetworking protocol version implemented here.
pub const GN_VERSION: u8 = 1;

/// `NextHeader` values of the basic header.
const NH_COMMON: u8 = 1;
/// `NextHeader` values of the common header.
const NH_BTP_B: u8 = 2;

/// Header-type discriminants of the common header (type · 16 + subtype).
const HT_SHB: u8 = 0x50; // TSB / single-hop
const HT_GBC_CIRCLE: u8 = 0x41;

/// Packet lifetime, encoded as multiplier + base (EN 302 636-4-1 §9.6.4).
///
/// The default of 60 s matches OpenC2X's DENM configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Lifetime {
    /// Remaining lifetime in units of 50 ms, `[0, 16383]` on the wire
    /// (collapsed to a flat 14-bit field here).
    pub fifty_ms_units: u16,
}

impl Lifetime {
    /// Creates a lifetime from seconds (rounded to 50 ms granularity).
    pub fn from_secs_f64(secs: f64) -> Self {
        Self {
            fifty_ms_units: ((secs / 0.05).round()).clamp(0.0, 16383.0) as u16,
        }
    }

    /// Lifetime in seconds.
    pub fn as_secs_f64(&self) -> f64 {
        f64::from(self.fifty_ms_units) * 0.05
    }
}

impl Default for Lifetime {
    fn default() -> Self {
        Self::from_secs_f64(60.0)
    }
}

/// GeoNetworking traffic class: store-carry-forward flag, channel offload,
/// and DCC profile id (maps to an EDCA access category at the MAC).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TrafficClass {
    /// Store-carry-forward permitted.
    pub scf: bool,
    /// DCC profile / priority, `[0, 63]`; 0 is highest (DP0, safety).
    pub dcc_profile: u8,
}

impl TrafficClass {
    /// DP0 — highest priority, used for DENMs.
    pub fn dp0() -> Self {
        Self {
            scf: false,
            dcc_profile: 0,
        }
    }

    /// DP2 — default CAM priority.
    pub fn dp2() -> Self {
        Self {
            scf: false,
            dcc_profile: 2,
        }
    }

    fn to_byte(self) -> u8 {
        (u8::from(self.scf) << 7) | (self.dcc_profile & 0x3F)
    }

    fn from_byte(b: u8) -> Self {
        Self {
            scf: b & 0x80 != 0,
            dcc_profile: b & 0x3F,
        }
    }
}

/// The basic header: version, next header, lifetime, remaining hop limit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BasicHeader {
    /// Protocol version ([`GN_VERSION`]).
    pub version: u8,
    /// Packet lifetime.
    pub lifetime: Lifetime,
    /// Remaining hop limit.
    pub remaining_hop_limit: u8,
}

impl BasicHeader {
    const WIRE_SIZE: usize = 1 + 1 + 2 + 1;

    fn write(&self, out: &mut Vec<u8>) {
        out.put_u8(self.version);
        out.put_u8(NH_COMMON);
        out.put_u16(self.lifetime.fifty_ms_units);
        out.put_u8(self.remaining_hop_limit);
    }

    fn read(r: &mut ByteReader<'_>) -> Result<Self> {
        let version = r.u8()?;
        if version != GN_VERSION {
            return Err(GeonetError::BadVersion(version));
        }
        let nh = r.u8()?;
        if nh != NH_COMMON {
            return Err(GeonetError::UnknownNextHeader(nh));
        }
        let lifetime = Lifetime {
            fifty_ms_units: r.u16()? & 0x3FFF,
        };
        let remaining_hop_limit = r.u8()?;
        Ok(Self {
            version,
            lifetime,
            remaining_hop_limit,
        })
    }
}

/// The common header: next header, header type, traffic class, payload
/// length and max hop limit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CommonHeader {
    /// Traffic class of the packet.
    pub traffic_class: TrafficClass,
    /// Payload length in bytes (BTP + facilities message).
    pub payload_length: u16,
    /// Maximum hop limit.
    pub max_hop_limit: u8,
}

impl CommonHeader {
    const WIRE_SIZE: usize = 1 + 1 + 1 + 2 + 1;

    fn write(&self, out: &mut Vec<u8>, header_type: u8) {
        out.put_u8(NH_BTP_B);
        out.put_u8(header_type);
        out.put_u8(self.traffic_class.to_byte());
        out.put_u16(self.payload_length);
        out.put_u8(self.max_hop_limit);
    }

    fn read(r: &mut ByteReader<'_>) -> Result<(Self, u8)> {
        let nh = r.u8()?;
        if nh != NH_BTP_B {
            return Err(GeonetError::UnknownNextHeader(nh));
        }
        let header_type = r.u8()?;
        let traffic_class = TrafficClass::from_byte(r.u8()?);
        let payload_length = r.u16()?;
        let max_hop_limit = r.u8()?;
        Ok((
            Self {
                traffic_class,
                payload_length,
                max_hop_limit,
            },
            header_type,
        ))
    }
}

/// Single-Hop Broadcast extended header: just the sender's position vector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SingleHopBroadcast {
    /// Source position vector.
    pub source: LongPositionVector,
}

/// GeoBroadcast extended header: sequence number, source position vector
/// and destination area.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeoBroadcast {
    /// Sequence number for duplicate detection.
    pub sequence_number: u16,
    /// Source position vector.
    pub source: LongPositionVector,
    /// Destination area of the broadcast.
    pub area: GeoArea,
}

/// The extended header of a packet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ExtendedHeader {
    /// SHB — used for CAMs.
    SingleHop(SingleHopBroadcast),
    /// GBC — used for DENMs.
    GeoBroadcast(GeoBroadcast),
}

impl ExtendedHeader {
    /// The source position vector regardless of variant.
    pub fn source(&self) -> &LongPositionVector {
        match self {
            ExtendedHeader::SingleHop(shb) => &shb.source,
            ExtendedHeader::GeoBroadcast(gbc) => &gbc.source,
        }
    }
}

/// A complete GeoNetworking packet with BTP-B transport and payload.
///
/// See the crate-level example for usage.
#[derive(Debug, Clone, PartialEq)]
pub struct GnPacket {
    /// Basic header.
    pub basic: BasicHeader,
    /// Common header (payload length is filled in by the constructors).
    pub common: CommonHeader,
    /// SHB or GBC extended header.
    pub extended: ExtendedHeader,
    /// BTP-B transport header.
    pub btp: BtpB,
    /// Facilities-layer payload (UPER-encoded CAM or DENM).
    ///
    /// Shared, immutable bytes: forwarding and per-hop delivery clone
    /// the `Arc`, not the payload, so a message is encoded exactly once
    /// however many hops or receivers it traverses.
    pub payload: std::sync::Arc<[u8]>,
}

impl GnPacket {
    /// Builds a single-hop broadcast packet (CAM transport).
    pub fn single_hop(
        source: LongPositionVector,
        traffic_class: TrafficClass,
        port: BtpPort,
        payload: impl Into<std::sync::Arc<[u8]>>,
    ) -> Self {
        let payload = payload.into();
        Self {
            basic: BasicHeader {
                version: GN_VERSION,
                lifetime: Lifetime::from_secs_f64(1.0),
                remaining_hop_limit: 1,
            },
            common: CommonHeader {
                traffic_class,
                payload_length: (payload.len() + BtpB::WIRE_SIZE) as u16,
                max_hop_limit: 1,
            },
            extended: ExtendedHeader::SingleHop(SingleHopBroadcast { source }),
            btp: BtpB::new(port),
            payload,
        }
    }

    /// Builds a geo-broadcast packet (DENM transport).
    pub fn geo_broadcast(
        source: LongPositionVector,
        sequence_number: u16,
        area: GeoArea,
        traffic_class: TrafficClass,
        port: BtpPort,
        payload: impl Into<std::sync::Arc<[u8]>>,
    ) -> Self {
        let payload = payload.into();
        Self {
            basic: BasicHeader {
                version: GN_VERSION,
                lifetime: Lifetime::default(),
                remaining_hop_limit: 10,
            },
            common: CommonHeader {
                traffic_class,
                payload_length: (payload.len() + BtpB::WIRE_SIZE) as u16,
                max_hop_limit: 10,
            },
            extended: ExtendedHeader::GeoBroadcast(GeoBroadcast {
                sequence_number,
                source,
                area,
            }),
            btp: BtpB::new(port),
            payload,
        }
    }

    /// Total wire size of this packet in bytes.
    pub fn wire_size(&self) -> usize {
        self.as_frame().wire_size()
    }

    /// Serialises the packet to wire bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.wire_size());
        self.as_frame().write_to(&mut out);
        out
    }

    /// Parses a packet from wire bytes.
    ///
    /// # Errors
    ///
    /// Returns an error on truncation, bad version, unknown header type,
    /// or a payload length that disagrees with the buffer.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        Ok(GnFrame::parse(bytes)?.to_packet())
    }

    /// This packet viewed as a borrowed [`GnFrame`].
    pub fn as_frame(&self) -> GnFrame<'_> {
        GnFrame {
            basic: self.basic,
            common: self.common,
            extended: self.extended,
            btp: self.btp,
            payload: &self.payload,
        }
    }

    /// Whether a receiver at the given position (degrees) is addressed by
    /// this packet: always for SHB, area membership for GBC.
    pub fn addresses_position(&self, lat_deg: f64, lon_deg: f64) -> bool {
        self.as_frame().addresses_position(lat_deg, lon_deg)
    }
}

/// A GeoNetworking frame whose payload is borrowed wire bytes — the
/// allocation-free counterpart of [`GnPacket`].
///
/// The owned packet exists so a message outlives the buffer it arrived
/// in (repetition queues, LDM storage); the hot TX/RX paths never need
/// that, so they parse and serialise frames against caller-owned
/// buffers instead and allocate nothing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GnFrame<'a> {
    /// Basic header.
    pub basic: BasicHeader,
    /// Common header.
    pub common: CommonHeader,
    /// SHB or GBC extended header.
    pub extended: ExtendedHeader,
    /// BTP-B transport header.
    pub btp: BtpB,
    /// Facilities-layer payload (UPER-encoded CAM or DENM).
    pub payload: &'a [u8],
}

impl<'a> GnFrame<'a> {
    /// Builds a single-hop broadcast frame (CAM transport) over a
    /// borrowed payload. Same header policy as [`GnPacket::single_hop`].
    pub fn single_hop(
        source: LongPositionVector,
        traffic_class: TrafficClass,
        port: BtpPort,
        payload: &'a [u8],
    ) -> Self {
        Self {
            basic: BasicHeader {
                version: GN_VERSION,
                lifetime: Lifetime::from_secs_f64(1.0),
                remaining_hop_limit: 1,
            },
            common: CommonHeader {
                traffic_class,
                payload_length: (payload.len() + BtpB::WIRE_SIZE) as u16,
                max_hop_limit: 1,
            },
            extended: ExtendedHeader::SingleHop(SingleHopBroadcast { source }),
            btp: BtpB::new(port),
            payload,
        }
    }

    /// Total wire size of this frame in bytes.
    pub fn wire_size(&self) -> usize {
        let ext = match self.extended {
            ExtendedHeader::SingleHop(_) => LongPositionVector::WIRE_SIZE,
            ExtendedHeader::GeoBroadcast(_) => {
                2 + LongPositionVector::WIRE_SIZE + GeoArea::WIRE_SIZE
            }
        };
        BasicHeader::WIRE_SIZE
            + CommonHeader::WIRE_SIZE
            + ext
            + BtpB::WIRE_SIZE
            + self.payload.len()
    }

    /// Appends the frame's wire bytes to `out`.
    pub fn write_to(&self, out: &mut Vec<u8>) {
        out.reserve(self.wire_size());
        self.basic.write(out);
        let header_type = match self.extended {
            ExtendedHeader::SingleHop(_) => HT_SHB,
            ExtendedHeader::GeoBroadcast(_) => HT_GBC_CIRCLE,
        };
        self.common.write(out, header_type);
        match &self.extended {
            ExtendedHeader::SingleHop(shb) => shb.source.write(out),
            ExtendedHeader::GeoBroadcast(gbc) => {
                out.put_u16(gbc.sequence_number);
                gbc.source.write(out);
                gbc.area.write(out);
            }
        }
        self.btp.write(out);
        out.extend_from_slice(self.payload);
    }

    /// Parses a frame from wire bytes, borrowing the payload.
    ///
    /// # Errors
    ///
    /// Returns an error on truncation, bad version, unknown header type,
    /// or a payload length that disagrees with the buffer.
    pub fn parse(bytes: &'a [u8]) -> Result<Self> {
        let mut r = ByteReader::new(bytes);
        let basic = BasicHeader::read(&mut r)?;
        let (common, header_type) = CommonHeader::read(&mut r)?;
        let extended = match header_type {
            HT_SHB => ExtendedHeader::SingleHop(SingleHopBroadcast {
                source: LongPositionVector::read(&mut r)?,
            }),
            HT_GBC_CIRCLE => {
                let sequence_number = r.u16()?;
                let source = LongPositionVector::read(&mut r)?;
                let area = GeoArea::read(&mut r)?;
                ExtendedHeader::GeoBroadcast(GeoBroadcast {
                    sequence_number,
                    source,
                    area,
                })
            }
            other => return Err(GeonetError::UnknownHeaderType(other)),
        };
        let btp = BtpB::read(&mut r)?;
        let payload = r.rest();
        let declared = common.payload_length as usize;
        let actual = payload.len() + BtpB::WIRE_SIZE;
        if declared != actual {
            return Err(GeonetError::PayloadLengthMismatch { declared, actual });
        }
        Ok(Self {
            basic,
            common,
            extended,
            btp,
            payload,
        })
    }

    /// Copies this frame into an owned [`GnPacket`] (allocates the
    /// payload `Arc`).
    pub fn to_packet(&self) -> GnPacket {
        GnPacket {
            basic: self.basic,
            common: self.common,
            extended: self.extended,
            btp: self.btp,
            payload: std::sync::Arc::from(self.payload),
        }
    }

    /// Whether a receiver at the given position (degrees) is addressed by
    /// this frame: always for SHB, area membership for GBC.
    pub fn addresses_position(&self, lat_deg: f64, lon_deg: f64) -> bool {
        match &self.extended {
            ExtendedHeader::SingleHop(_) => true,
            ExtendedHeader::GeoBroadcast(gbc) => gbc.area.contains(lat_deg, lon_deg),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::position::GnAddress;
    use proptest::prelude::*;

    fn pv() -> LongPositionVector {
        LongPositionVector::new(GnAddress::new(0xBEEF), 1000, 41.178, -8.608, 1.5, 90.0)
    }

    #[test]
    fn shb_roundtrip() {
        let p = GnPacket::single_hop(pv(), TrafficClass::dp2(), BtpPort::CAM, vec![1, 2, 3]);
        let bytes = p.to_bytes();
        assert_eq!(bytes.len(), p.wire_size());
        let back = GnPacket::from_bytes(&bytes).unwrap();
        assert_eq!(back, p);
        assert_eq!(back.btp.destination_port, BtpPort::CAM);
        assert!(back.addresses_position(0.0, 0.0), "SHB addresses everyone");
    }

    #[test]
    fn gbc_roundtrip_and_area_addressing() {
        let area = GeoArea::circle(41.178, -8.608, 100.0);
        let p = GnPacket::geo_broadcast(
            pv(),
            7,
            area,
            TrafficClass::dp0(),
            BtpPort::DENM,
            vec![0xAB; 30],
        );
        let bytes = p.to_bytes();
        let back = GnPacket::from_bytes(&bytes).unwrap();
        assert_eq!(back, p);
        assert!(back.addresses_position(41.178, -8.608));
        assert!(!back.addresses_position(41.2, -8.608), "outside the circle");
    }

    #[test]
    fn denm_priority_is_dp0() {
        let p = GnPacket::geo_broadcast(
            pv(),
            1,
            GeoArea::circle(0.0, 0.0, 10.0),
            TrafficClass::dp0(),
            BtpPort::DENM,
            vec![],
        );
        assert_eq!(p.common.traffic_class.dcc_profile, 0);
    }

    #[test]
    fn wire_size_matches_paper_scale() {
        // A GBC DENM with a ~30-byte payload should be on the order of
        // 100 bytes on the air, consistent with short 802.11p frames.
        let p = GnPacket::geo_broadcast(
            pv(),
            1,
            GeoArea::circle(41.178, -8.608, 100.0),
            TrafficClass::dp0(),
            BtpPort::DENM,
            vec![0u8; 30],
        );
        let size = p.to_bytes().len();
        assert!(size > 60 && size < 150, "wire size {size}");
    }

    #[test]
    fn bad_version_rejected() {
        let p = GnPacket::single_hop(pv(), TrafficClass::dp2(), BtpPort::CAM, vec![]);
        let mut bytes = p.to_bytes();
        bytes[0] = 9;
        assert!(matches!(
            GnPacket::from_bytes(&bytes),
            Err(GeonetError::BadVersion(9))
        ));
    }

    #[test]
    fn payload_length_mismatch_rejected() {
        let p = GnPacket::single_hop(pv(), TrafficClass::dp2(), BtpPort::CAM, vec![1, 2, 3]);
        let mut bytes = p.to_bytes();
        bytes.pop(); // drop one payload byte
        assert!(matches!(
            GnPacket::from_bytes(&bytes),
            Err(GeonetError::PayloadLengthMismatch { .. })
        ));
    }

    #[test]
    fn truncated_header_rejected() {
        let p = GnPacket::single_hop(pv(), TrafficClass::dp2(), BtpPort::CAM, vec![]);
        let bytes = p.to_bytes();
        for cut in [0, 3, 8, 12] {
            assert!(GnPacket::from_bytes(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn lifetime_encoding() {
        let lt = Lifetime::from_secs_f64(60.0);
        assert_eq!(lt.fifty_ms_units, 1200);
        assert_eq!(lt.as_secs_f64(), 60.0);
        // Saturates at the 14-bit cap.
        assert_eq!(Lifetime::from_secs_f64(10_000.0).fifty_ms_units, 16383);
    }

    #[test]
    fn traffic_class_byte_roundtrip() {
        for tc in [
            TrafficClass::dp0(),
            TrafficClass::dp2(),
            TrafficClass {
                scf: true,
                dcc_profile: 63,
            },
        ] {
            assert_eq!(TrafficClass::from_byte(tc.to_byte()), tc);
        }
    }

    proptest! {
        #[test]
        fn arbitrary_bytes_never_panic_the_parser(bytes in proptest::collection::vec(any::<u8>(), 0..160)) {
            let _ = GnPacket::from_bytes(&bytes);
        }

        #[test]
        fn packet_roundtrip_arbitrary_payload(
            payload in proptest::collection::vec(any::<u8>(), 0..600),
            seq in any::<u16>(),
            gbc in any::<bool>(),
        ) {
            let p = if gbc {
                GnPacket::geo_broadcast(
                    pv(), seq, GeoArea::circle(41.0, -8.0, 50.0),
                    TrafficClass::dp0(), BtpPort::DENM, payload)
            } else {
                GnPacket::single_hop(pv(), TrafficClass::dp2(), BtpPort::CAM, payload)
            };
            let bytes = p.to_bytes();
            prop_assert_eq!(GnPacket::from_bytes(&bytes).unwrap(), p);
        }

        #[test]
        fn roundtrip_arbitrary_port_and_traffic_class(
            port in any::<u16>(),
            info in any::<u16>(),
            scf in any::<bool>(),
            dp in 0u8..=63,
            hops in any::<u8>(),
            lifetime_units in 0u16..=16383,
            payload in proptest::collection::vec(any::<u8>(), 0..64),
        ) {
            // Beyond the CAM/DENM well-known ports: any 16-bit BTP port,
            // port info, DCC profile, hop limit, and lifetime survive the
            // wire intact.
            let mut p = GnPacket::single_hop(
                pv(),
                TrafficClass { scf, dcc_profile: dp },
                BtpPort(port),
                payload,
            );
            p.btp.destination_port_info = info;
            p.basic.remaining_hop_limit = hops;
            p.basic.lifetime = Lifetime { fifty_ms_units: lifetime_units };
            let back = GnPacket::from_bytes(&p.to_bytes()).unwrap();
            prop_assert_eq!(back, p);
        }

        #[test]
        fn wire_size_always_matches_encoding(
            payload in proptest::collection::vec(any::<u8>(), 0..300),
            gbc in any::<bool>(),
        ) {
            let p = if gbc {
                GnPacket::geo_broadcast(
                    pv(), 9, GeoArea::circle(41.0, -8.0, 50.0),
                    TrafficClass::dp0(), BtpPort::DENM, payload)
            } else {
                GnPacket::single_hop(pv(), TrafficClass::dp2(), BtpPort::CAM, payload)
            };
            prop_assert_eq!(p.wire_size(), p.to_bytes().len());
        }

        #[test]
        fn every_proper_prefix_errors_cleanly(
            payload in proptest::collection::vec(any::<u8>(), 0..48),
            gbc in any::<bool>(),
        ) {
            // The payload-length field makes any truncation detectable:
            // every proper prefix of a valid packet decodes to Err, so a
            // clipped frame can never masquerade as a shorter valid one.
            let p = if gbc {
                GnPacket::geo_broadcast(
                    pv(), 3, GeoArea::circle(41.0, -8.0, 50.0),
                    TrafficClass::dp0(), BtpPort::DENM, payload)
            } else {
                GnPacket::single_hop(pv(), TrafficClass::dp2(), BtpPort::CAM, payload)
            };
            let bytes = p.to_bytes();
            for cut in 0..bytes.len() {
                prop_assert!(GnPacket::from_bytes(&bytes[..cut]).is_err(), "cut {}", cut);
            }
        }
    }
}
