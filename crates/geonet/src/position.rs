//! GeoNetworking addresses and position vectors.

use crate::bytesio::{ByteReader, ByteWriterExt};
use crate::Result;

/// A GeoNetworking address (simplified to the 48-bit MID portion, carried
/// here as a `u64` with the top 16 bits zero).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct GnAddress(u64);

impl GnAddress {
    /// Creates an address from the lower 48 bits of `mid`.
    pub fn new(mid: u64) -> Self {
        Self(mid & 0xFFFF_FFFF_FFFF)
    }

    /// Raw 48-bit value.
    pub fn mid(&self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for GnAddress {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "gn:{:012x}", self.0)
    }
}

/// Long Position Vector: address, timestamp, position and movement of the
/// packet's source (EN 302 636-4-1 §9.5.2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LongPositionVector {
    /// Source GeoNetworking address.
    pub address: GnAddress,
    /// Timestamp of the position fix, milliseconds (mod 2^32 on the wire).
    pub timestamp_ms: u32,
    /// Latitude in 0.1 micro-degrees.
    pub latitude: i32,
    /// Longitude in 0.1 micro-degrees.
    pub longitude: i32,
    /// Speed in 0.01 m/s.
    pub speed_cm_s: u16,
    /// Heading in 0.1 degrees from North.
    pub heading_tenth_deg: u16,
}

impl LongPositionVector {
    /// Wire size in bytes.
    pub const WIRE_SIZE: usize = 8 + 4 + 4 + 4 + 2 + 2;

    /// Builds a position vector from natural units.
    pub fn new(
        address: GnAddress,
        timestamp_ms: u64,
        lat_deg: f64,
        lon_deg: f64,
        speed_mps: f64,
        heading_deg: f64,
    ) -> Self {
        Self {
            address,
            timestamp_ms: (timestamp_ms & 0xFFFF_FFFF) as u32,
            latitude: (lat_deg * 1e7).round().clamp(-9e8, 9e8) as i32,
            longitude: (lon_deg * 1e7).round().clamp(-1.8e9, 1.8e9) as i32,
            speed_cm_s: (speed_mps * 100.0).round().clamp(0.0, 65535.0) as u16,
            heading_tenth_deg: ((heading_deg.rem_euclid(360.0)) * 10.0).round() as u16 % 3600,
        }
    }

    /// Latitude in degrees.
    pub fn latitude_deg(&self) -> f64 {
        f64::from(self.latitude) / 1e7
    }

    /// Longitude in degrees.
    pub fn longitude_deg(&self) -> f64 {
        f64::from(self.longitude) / 1e7
    }

    /// Speed in metres per second.
    pub fn speed_mps(&self) -> f64 {
        f64::from(self.speed_cm_s) / 100.0
    }

    /// Heading in degrees from North.
    pub fn heading_deg(&self) -> f64 {
        f64::from(self.heading_tenth_deg) / 10.0
    }

    pub(crate) fn write(&self, out: &mut Vec<u8>) {
        out.put_u64(self.address.mid());
        out.put_u32(self.timestamp_ms);
        out.put_i32(self.latitude);
        out.put_i32(self.longitude);
        out.put_u16(self.speed_cm_s);
        out.put_u16(self.heading_tenth_deg);
    }

    pub(crate) fn read(r: &mut ByteReader<'_>) -> Result<Self> {
        Ok(Self {
            address: GnAddress::new(r.u64()?),
            timestamp_ms: r.u32()?,
            latitude: r.i32()?,
            longitude: r.i32()?,
            speed_cm_s: r.u16()?,
            heading_tenth_deg: r.u16()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn address_masks_to_48_bits() {
        let a = GnAddress::new(u64::MAX);
        assert_eq!(a.mid(), 0xFFFF_FFFF_FFFF);
        assert_eq!(a.to_string(), "gn:ffffffffffff");
    }

    #[test]
    fn position_vector_units() {
        let pv = LongPositionVector::new(GnAddress::new(1), 1000, 41.178, -8.608, 1.5, 93.0);
        assert!((pv.latitude_deg() - 41.178).abs() < 1e-6);
        assert!((pv.longitude_deg() + 8.608).abs() < 1e-6);
        assert_eq!(pv.speed_mps(), 1.5);
        assert_eq!(pv.heading_deg(), 93.0);
    }

    #[test]
    fn heading_wraps_into_range() {
        let pv = LongPositionVector::new(GnAddress::new(1), 0, 0.0, 0.0, 0.0, 725.0);
        assert!((pv.heading_deg() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn timestamp_wraps_mod_2_32() {
        let pv = LongPositionVector::new(GnAddress::new(1), (1u64 << 32) + 7, 0.0, 0.0, 0.0, 0.0);
        assert_eq!(pv.timestamp_ms, 7);
    }

    #[test]
    fn wire_roundtrip_and_size() {
        let pv = LongPositionVector::new(GnAddress::new(0xABCDEF), 123456, 41.1, -8.6, 2.5, 180.0);
        let mut out = Vec::new();
        pv.write(&mut out);
        assert_eq!(out.len(), LongPositionVector::WIRE_SIZE);
        let mut r = ByteReader::new(&out);
        assert_eq!(LongPositionVector::read(&mut r).unwrap(), pv);
    }

    proptest! {
        #[test]
        fn pv_roundtrip(mid in any::<u64>(), ts in any::<u32>(),
                        lat in -90.0f64..90.0, lon in -180.0f64..180.0,
                        speed in 0.0f64..600.0, heading in 0.0f64..360.0) {
            let pv = LongPositionVector::new(
                GnAddress::new(mid), u64::from(ts), lat, lon, speed, heading);
            let mut out = Vec::new();
            pv.write(&mut out);
            let mut r = ByteReader::new(&out);
            prop_assert_eq!(LongPositionVector::read(&mut r).unwrap(), pv);
        }
    }
}
