//! GeoNetworking (ETSI EN 302 636-4-1) and BTP (EN 302 636-5-1) — the
//! Networking & Transport layer of the ETSI ITS stack.
//!
//! In the testbed, every CAM and DENM leaving an OpenC2X station is wrapped
//! in a Basic Transport Protocol header and a GeoNetworking header before
//! reaching the 802.11p access layer. This crate implements the subset the
//! paper's use-case exercises:
//!
//! * [`LongPositionVector`] — the sender's geo-stamped address,
//! * [`GeoArea`] — circular / rectangular destination areas with the
//!   standard point-inside test (EN 302 931),
//! * [`headers::SingleHopBroadcast`] (SHB) — used for CAMs,
//! * [`headers::GeoBroadcast`] (GBC) — used for DENMs addressed to a
//!   relevance area,
//! * [`btp::BtpB`] — non-interactive transport with the well-known ports
//!   (2001 = CAM, 2002 = DENM),
//! * [`GnPacket`] — assembly/parse of a full
//!   `BasicHeader | CommonHeader | Extended | BTP-B | payload` packet to
//!   wire bytes.
//!
//! GeoNetworking headers are octet-aligned (unlike the UPER facilities
//! payloads), so this crate serialises them with plain big-endian byte
//! writing.
//!
//! # Example
//!
//! ```
//! use geonet::{GnAddress, GnPacket, GeoArea, LongPositionVector};
//! use geonet::btp::BtpPort;
//! use geonet::headers::{ExtendedHeader, TrafficClass};
//!
//! # fn main() -> Result<(), geonet::GeonetError> {
//! let source = LongPositionVector::new(
//!     GnAddress::new(0x1234),
//!     5_000,                       // timestamp ms
//!     41.178, -8.608,              // degrees
//!     1.5, 90.0,                   // m/s, degrees
//! );
//! let area = GeoArea::circle(41.178, -8.608, 100.0);
//! let packet = GnPacket::geo_broadcast(
//!     source, 1, area, TrafficClass::dp0(), BtpPort::DENM, vec![0xAB; 24],
//! );
//! let bytes = packet.to_bytes();
//! let back = GnPacket::from_bytes(&bytes)?;
//! assert_eq!(packet, back);
//! assert!(matches!(back.extended, ExtendedHeader::GeoBroadcast(_)));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

pub mod area;
pub mod btp;
pub mod bytesio;
mod error;
pub mod forwarding;
pub mod headers;
pub mod loctable;
mod position;

pub use area::GeoArea;
pub use error::GeonetError;
pub use headers::{GnFrame, GnPacket};
pub use position::{GnAddress, LongPositionVector};

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, GeonetError>;
