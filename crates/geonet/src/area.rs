//! Geographic destination areas (ETSI EN 302 931).
//!
//! A GeoBroadcast packet carries a destination area; receivers evaluate the
//! standard characteristic function `f(x, y)` to decide whether they are
//! inside (f ≥ 0 at the border, f > 0 strictly inside).

use crate::bytesio::{ByteReader, ByteWriterExt};
use crate::error::GeonetError;
use crate::Result;

/// Shape discriminant on the wire.
const SHAPE_CIRCLE: u8 = 0;
const SHAPE_RECTANGLE: u8 = 1;
const SHAPE_ELLIPSE: u8 = 2;

/// A geographic destination area: circle, rectangle or ellipse, described
/// by a centre (0.1 µdeg), half-axes in metres, and an azimuth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeoArea {
    /// Centre latitude in 0.1 micro-degrees.
    pub latitude: i32,
    /// Centre longitude in 0.1 micro-degrees.
    pub longitude: i32,
    /// Half-length of the major axis (radius for circles), metres.
    pub distance_a_m: u16,
    /// Half-length of the minor axis (0 for circles), metres.
    pub distance_b_m: u16,
    /// Azimuth of the major axis, degrees from North, `[0, 360)`.
    pub angle_deg: u16,
    /// Shape of the area.
    pub shape: Shape,
}

/// The shape of a [`GeoArea`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Shape {
    /// Circular area: `distance_a` is the radius.
    Circle,
    /// Rectangular area: `distance_a`/`distance_b` are the half-sides.
    Rectangle,
    /// Elliptical area: `distance_a`/`distance_b` are the semi-axes.
    Ellipse,
}

impl GeoArea {
    /// Wire size in bytes.
    pub const WIRE_SIZE: usize = 4 + 4 + 2 + 2 + 2 + 1;

    /// Creates a circular area from degrees and a radius in metres.
    pub fn circle(lat_deg: f64, lon_deg: f64, radius_m: f64) -> Self {
        Self {
            latitude: (lat_deg * 1e7).round() as i32,
            longitude: (lon_deg * 1e7).round() as i32,
            distance_a_m: radius_m.round().clamp(0.0, 65535.0) as u16,
            distance_b_m: 0,
            angle_deg: 0,
            shape: Shape::Circle,
        }
    }

    /// Creates a rectangular area (half-sides `a`, `b`, rotated by
    /// `angle_deg` from North).
    pub fn rectangle(lat_deg: f64, lon_deg: f64, a_m: f64, b_m: f64, angle_deg: f64) -> Self {
        Self {
            latitude: (lat_deg * 1e7).round() as i32,
            longitude: (lon_deg * 1e7).round() as i32,
            distance_a_m: a_m.round().clamp(0.0, 65535.0) as u16,
            distance_b_m: b_m.round().clamp(0.0, 65535.0) as u16,
            angle_deg: (angle_deg.rem_euclid(360.0)).round() as u16 % 360,
            shape: Shape::Rectangle,
        }
    }

    /// Creates an elliptical area (semi-axes `a`, `b`, rotated by
    /// `angle_deg` from North).
    pub fn ellipse(lat_deg: f64, lon_deg: f64, a_m: f64, b_m: f64, angle_deg: f64) -> Self {
        Self {
            angle_deg: (angle_deg.rem_euclid(360.0)).round() as u16 % 360,
            shape: Shape::Ellipse,
            ..Self::rectangle(lat_deg, lon_deg, a_m, b_m, 0.0)
        }
    }

    /// The EN 302 931 characteristic function at a point given in degrees.
    ///
    /// Returns > 0 strictly inside, = 0 on the border, < 0 outside.
    pub fn characteristic(&self, lat_deg: f64, lon_deg: f64) -> f64 {
        // Project the point into a local ENU frame centred on the area.
        const EARTH_RADIUS_M: f64 = 6_371_000.0;
        let clat = f64::from(self.latitude) / 1e7;
        let clon = f64::from(self.longitude) / 1e7;
        let dx_east = (lon_deg - clon).to_radians() * clat.to_radians().cos() * EARTH_RADIUS_M;
        let dy_north = (lat_deg - clat).to_radians() * EARTH_RADIUS_M;
        // Rotate into the area's frame: x along the major axis (azimuth
        // from North), y along the minor axis.
        let az = f64::from(self.angle_deg).to_radians();
        let x = dx_east * az.sin() + dy_north * az.cos();
        let y = dx_east * az.cos() - dy_north * az.sin();
        let a = f64::from(self.distance_a_m).max(f64::MIN_POSITIVE);
        let b = match self.shape {
            Shape::Circle => a,
            _ => f64::from(self.distance_b_m).max(f64::MIN_POSITIVE),
        };
        match self.shape {
            Shape::Circle => 1.0 - (x / a).powi(2) - (y / a).powi(2),
            Shape::Rectangle => {
                let fx = 1.0 - (x / a).powi(2);
                let fy = 1.0 - (y / b).powi(2);
                fx.min(fy)
            }
            Shape::Ellipse => 1.0 - (x / a).powi(2) - (y / b).powi(2),
        }
    }

    /// Whether a point (degrees) lies inside or on the border of the area.
    pub fn contains(&self, lat_deg: f64, lon_deg: f64) -> bool {
        self.characteristic(lat_deg, lon_deg) >= 0.0
    }

    pub(crate) fn write(&self, out: &mut Vec<u8>) {
        out.put_i32(self.latitude);
        out.put_i32(self.longitude);
        out.put_u16(self.distance_a_m);
        out.put_u16(self.distance_b_m);
        out.put_u16(self.angle_deg);
        out.put_u8(match self.shape {
            Shape::Circle => SHAPE_CIRCLE,
            Shape::Rectangle => SHAPE_RECTANGLE,
            Shape::Ellipse => SHAPE_ELLIPSE,
        });
    }

    pub(crate) fn read(r: &mut ByteReader<'_>) -> Result<Self> {
        let latitude = r.i32()?;
        let longitude = r.i32()?;
        let distance_a_m = r.u16()?;
        let distance_b_m = r.u16()?;
        let angle_deg = r.u16()?;
        let shape = match r.u8()? {
            SHAPE_CIRCLE => Shape::Circle,
            SHAPE_RECTANGLE => Shape::Rectangle,
            SHAPE_ELLIPSE => Shape::Ellipse,
            other => return Err(GeonetError::UnknownHeaderType(other)),
        };
        Ok(Self {
            latitude,
            longitude,
            distance_a_m,
            distance_b_m,
            angle_deg,
            shape,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const LAT: f64 = 41.178;
    const LON: f64 = -8.608;
    /// Metres per degree of latitude.
    const M_PER_DEG_LAT: f64 = 111_194.9;

    fn offset_north(m: f64) -> f64 {
        LAT + m / M_PER_DEG_LAT
    }

    fn offset_east(m: f64) -> f64 {
        LON + m / (M_PER_DEG_LAT * LAT.to_radians().cos())
    }

    #[test]
    fn circle_contains_centre_and_excludes_far_points() {
        let area = GeoArea::circle(LAT, LON, 100.0);
        assert!(area.contains(LAT, LON));
        assert!(area.contains(offset_north(99.0), LON));
        assert!(!area.contains(offset_north(101.5), LON));
        assert!(area.contains(LAT, offset_east(99.0)));
        assert!(!area.contains(LAT, offset_east(101.5)));
    }

    #[test]
    fn characteristic_sign_convention() {
        let area = GeoArea::circle(LAT, LON, 50.0);
        assert!(area.characteristic(LAT, LON) > 0.0);
        let f_far = area.characteristic(offset_north(200.0), LON);
        assert!(f_far < 0.0);
    }

    #[test]
    fn rectangle_axis_aligned() {
        // Major axis (a) along North, 100 m; minor (b) East, 20 m.
        let area = GeoArea::rectangle(LAT, LON, 100.0, 20.0, 0.0);
        assert!(area.contains(offset_north(95.0), LON));
        assert!(!area.contains(offset_north(105.0), LON));
        assert!(area.contains(LAT, offset_east(18.0)));
        assert!(!area.contains(LAT, offset_east(25.0)));
    }

    #[test]
    fn rectangle_rotated_90_swaps_axes() {
        let area = GeoArea::rectangle(LAT, LON, 100.0, 20.0, 90.0);
        // Major axis now points East.
        assert!(area.contains(LAT, offset_east(95.0)));
        assert!(!area.contains(offset_north(95.0), LON));
    }

    #[test]
    fn ellipse_between_circle_and_rectangle() {
        let ellipse = GeoArea::ellipse(LAT, LON, 100.0, 20.0, 0.0);
        // Corner point at (70 north, 15 east) is inside the rectangle but
        // outside the ellipse.
        let lat = offset_north(70.0);
        let lon = offset_east(15.0);
        let rect = GeoArea::rectangle(LAT, LON, 100.0, 20.0, 0.0);
        assert!(rect.contains(lat, lon));
        assert!(!ellipse.contains(lat, lon));
        assert!(ellipse.contains(offset_north(95.0), LON));
    }

    #[test]
    fn wire_roundtrip() {
        for area in [
            GeoArea::circle(LAT, LON, 100.0),
            GeoArea::rectangle(LAT, LON, 50.0, 25.0, 45.0),
            GeoArea::ellipse(LAT, LON, 80.0, 40.0, 120.0),
        ] {
            let mut out = Vec::new();
            area.write(&mut out);
            assert_eq!(out.len(), GeoArea::WIRE_SIZE);
            let mut r = ByteReader::new(&out);
            assert_eq!(GeoArea::read(&mut r).unwrap(), area);
        }
    }

    #[test]
    fn bad_shape_byte_rejected() {
        let mut out = Vec::new();
        GeoArea::circle(LAT, LON, 10.0).write(&mut out);
        *out.last_mut().unwrap() = 9;
        let mut r = ByteReader::new(&out);
        assert!(matches!(
            GeoArea::read(&mut r),
            Err(GeonetError::UnknownHeaderType(9))
        ));
    }

    proptest! {
        #[test]
        fn circle_membership_matches_distance(radius in 1.0f64..5000.0,
                                              north in -6000.0f64..6000.0,
                                              east in -6000.0f64..6000.0) {
            let area = GeoArea::circle(LAT, LON, radius);
            let lat = offset_north(north);
            let lon = offset_east(east);
            let dist = (north * north + east * east).sqrt();
            // Leave a tolerance band for projection + quantisation error.
            if dist < radius * 0.98 {
                prop_assert!(area.contains(lat, lon));
            } else if dist > radius * 1.02 + 2.0 {
                prop_assert!(!area.contains(lat, lon));
            }
        }
    }
}
