//! Minimal panic-free big-endian byte reader/writer.
//!
//! Originally private to the GeoNetworking header parsers, the pair is
//! public because it is the workspace's reference framing style: a
//! failed read returns a typed [`GeonetError::Truncated`] and consumes
//! nothing, so decoders layered on top (the `its-testbed` `RunRecord`
//! wire codec, the shard campaign protocol) inherit the
//! truncation-never-panics property the property tests pin.

use crate::error::GeonetError;
use crate::Result;

/// Sequential big-endian reader over a byte slice.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Consumes the next `n` bytes; a shortage consumes nothing.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(GeonetError::Truncated {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n]; // detlint:allow(S3) in-bounds: the remaining() guard above returns Truncated first
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a big-endian `u16`.
    pub fn u16(&mut self) -> Result<u16> {
        let b = self.take(2)?;
        Ok(u16::from_be_bytes([b[0], b[1]])) // detlint:allow(S3) in-bounds: take(2) yields exactly 2 bytes
    }

    /// Reads a big-endian `u32`.
    pub fn u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]])) // detlint:allow(S3) in-bounds: take(4) yields exactly 4 bytes
    }

    /// Reads a big-endian `i32`.
    pub fn i32(&mut self) -> Result<i32> {
        Ok(self.u32()? as i32)
    }

    /// Reads a big-endian `u64`.
    pub fn u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        Ok(u64::from_be_bytes([
            // detlint:allow(S3) in-bounds: take(8) yields exactly 8 bytes
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Consumes and returns everything left.
    pub fn rest(&mut self) -> &'a [u8] {
        let s = &self.buf[self.pos..]; // detlint:allow(S3) in-bounds: pos never exceeds buf.len()
        self.pos = self.buf.len();
        s
    }
}

/// Big-endian writer helpers over a `Vec<u8>`.
pub trait ByteWriterExt {
    /// Appends one byte.
    fn put_u8(&mut self, v: u8);
    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16);
    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32);
    /// Appends a big-endian `i32`.
    fn put_i32(&mut self, v: i32);
    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64);
}

impl ByteWriterExt for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }
    fn put_u16(&mut self, v: u16) {
        self.extend_from_slice(&v.to_be_bytes());
    }
    fn put_u32(&mut self, v: u32) {
        self.extend_from_slice(&v.to_be_bytes());
    }
    fn put_i32(&mut self, v: i32) {
        self.extend_from_slice(&v.to_be_bytes());
    }
    fn put_u64(&mut self, v: u64) {
        self.extend_from_slice(&v.to_be_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut v = Vec::new();
        v.put_u8(0xAB);
        v.put_u16(0x1234);
        v.put_u32(0xDEAD_BEEF);
        v.put_i32(-5);
        v.put_u64(0x0102_0304_0506_0708);
        let mut r = ByteReader::new(&v);
        assert_eq!(r.u8().unwrap(), 0xAB);
        assert_eq!(r.u16().unwrap(), 0x1234);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.i32().unwrap(), -5);
        assert_eq!(r.u64().unwrap(), 0x0102_0304_0506_0708);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn truncation_detected() {
        let v = [0u8; 3];
        let mut r = ByteReader::new(&v);
        assert!(r.u32().is_err());
        // Failed read consumes nothing.
        assert_eq!(r.remaining(), 3);
        assert!(r.u16().is_ok());
    }

    #[test]
    fn rest_drains() {
        let v = [1u8, 2, 3];
        let mut r = ByteReader::new(&v);
        r.u8().unwrap();
        assert_eq!(r.rest(), &[2, 3]);
        assert_eq!(r.remaining(), 0);
    }
}
