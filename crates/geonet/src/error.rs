//! Error type for GeoNetworking packet processing.

use std::error::Error;
use std::fmt;

/// Error produced when assembling or parsing GeoNetworking packets.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GeonetError {
    /// The byte buffer ended before the structure was complete.
    Truncated {
        /// Bytes needed by the failed read.
        needed: usize,
        /// Bytes actually remaining.
        remaining: usize,
    },
    /// An unknown GeoNetworking header type byte.
    UnknownHeaderType(u8),
    /// An unknown next-header discriminant.
    UnknownNextHeader(u8),
    /// The protocol version byte did not match.
    BadVersion(u8),
    /// The declared payload length disagrees with the buffer.
    PayloadLengthMismatch {
        /// Length declared in the common header.
        declared: usize,
        /// Bytes actually present.
        actual: usize,
    },
    /// A field value is not representable on the wire.
    FieldOutOfRange(&'static str),
}

impl fmt::Display for GeonetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeonetError::Truncated { needed, remaining } => write!(
                f,
                "truncated packet: needed {needed} bytes, {remaining} remaining"
            ),
            GeonetError::UnknownHeaderType(t) => write!(f, "unknown geonet header type {t:#x}"),
            GeonetError::UnknownNextHeader(n) => write!(f, "unknown next-header value {n}"),
            GeonetError::BadVersion(v) => write!(f, "unsupported geonetworking version {v}"),
            GeonetError::PayloadLengthMismatch { declared, actual } => write!(
                f,
                "payload length mismatch: header declares {declared}, buffer holds {actual}"
            ),
            GeonetError::FieldOutOfRange(field) => {
                write!(f, "field {field} outside its wire range")
            }
        }
    }
}

impl Error for GeonetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync_and_displays() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GeonetError>();
        let e = GeonetError::Truncated {
            needed: 8,
            remaining: 3,
        };
        assert!(e.to_string().contains("8"));
    }
}
