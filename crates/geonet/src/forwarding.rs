//! GeoBroadcast forwarding (EN 302 636-4-1 Annex E, simple scheme).
//!
//! A DENM addressed to a destination area may need more than one hop to
//! cover it (the paper's §V platoon extension forwards DENMs down the
//! platoon). This module implements the *simple* GBC forwarding
//! algorithm: a router inside the destination area re-broadcasts the
//! packet (area flooding), decrementing the remaining hop limit;
//! duplicate suppression is the [`crate::loctable::LocationTable`]'s
//! job. Routers outside the area discard (we do not implement line
//! forwarding — the testbed never needs to route *toward* a remote
//! area).

use crate::headers::{ExtendedHeader, GnPacket};

/// Why a packet was not forwarded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiscardReason {
    /// Only GeoBroadcast packets are forwarded.
    NotGeoBroadcast,
    /// The remaining hop limit is exhausted.
    HopLimitExhausted,
    /// This router is outside the destination area (no line
    /// forwarding in the simple scheme).
    OutsideDestinationArea,
}

/// The forwarding decision for a received packet.
#[derive(Debug, Clone, PartialEq)]
pub enum ForwardDecision {
    /// Re-broadcast this rebuilt packet (hop limit already decremented).
    Rebroadcast(GnPacket),
    /// Do not forward.
    Discard(DiscardReason),
}

/// Decides whether a router at `(lat_deg, lon_deg)` should re-broadcast
/// a received packet.
///
/// # Example
///
/// ```
/// use geonet::btp::BtpPort;
/// use geonet::forwarding::{gbc_forward_decision, ForwardDecision};
/// use geonet::headers::TrafficClass;
/// use geonet::{GeoArea, GnAddress, GnPacket, LongPositionVector};
///
/// let source = LongPositionVector::new(GnAddress::new(1), 0, 41.178, -8.608, 0.0, 0.0);
/// let area = GeoArea::circle(41.178, -8.608, 100.0);
/// let packet = GnPacket::geo_broadcast(
///     source, 1, area, TrafficClass::dp0(), BtpPort::DENM, vec![0; 16]);
/// // A router inside the area forwards with one less hop.
/// match gbc_forward_decision(&packet, 41.178, -8.608) {
///     ForwardDecision::Rebroadcast(p) => {
///         assert_eq!(p.basic.remaining_hop_limit,
///                    packet.basic.remaining_hop_limit - 1);
///     }
///     other => panic!("expected rebroadcast, got {other:?}"),
/// }
/// ```
pub fn gbc_forward_decision(packet: &GnPacket, lat_deg: f64, lon_deg: f64) -> ForwardDecision {
    let gbc = match &packet.extended {
        ExtendedHeader::GeoBroadcast(gbc) => gbc,
        ExtendedHeader::SingleHop(_) => {
            return ForwardDecision::Discard(DiscardReason::NotGeoBroadcast)
        }
    };
    if packet.basic.remaining_hop_limit <= 1 {
        return ForwardDecision::Discard(DiscardReason::HopLimitExhausted);
    }
    if !gbc.area.contains(lat_deg, lon_deg) {
        return ForwardDecision::Discard(DiscardReason::OutsideDestinationArea);
    }
    let mut forwarded = packet.clone();
    forwarded.basic.remaining_hop_limit -= 1;
    ForwardDecision::Rebroadcast(forwarded)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::btp::BtpPort;
    use crate::headers::TrafficClass;
    use crate::{GeoArea, GnAddress, GnPacket, LongPositionVector};

    fn gbc_packet() -> GnPacket {
        let source = LongPositionVector::new(GnAddress::new(1), 0, 41.178, -8.608, 0.0, 0.0);
        let area = GeoArea::circle(41.178, -8.608, 100.0);
        GnPacket::geo_broadcast(
            source,
            1,
            area,
            TrafficClass::dp0(),
            BtpPort::DENM,
            vec![0; 8],
        )
    }

    #[test]
    fn forwards_inside_area_with_decremented_hop_limit() {
        let p = gbc_packet();
        match gbc_forward_decision(&p, 41.178, -8.608) {
            ForwardDecision::Rebroadcast(f) => {
                assert_eq!(f.basic.remaining_hop_limit, p.basic.remaining_hop_limit - 1);
                assert_eq!(f.payload, p.payload);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn discards_outside_area() {
        let p = gbc_packet();
        assert_eq!(
            gbc_forward_decision(&p, 42.0, -8.608),
            ForwardDecision::Discard(DiscardReason::OutsideDestinationArea)
        );
    }

    #[test]
    fn discards_when_hop_limit_exhausted() {
        let mut p = gbc_packet();
        p.basic.remaining_hop_limit = 1;
        assert_eq!(
            gbc_forward_decision(&p, 41.178, -8.608),
            ForwardDecision::Discard(DiscardReason::HopLimitExhausted)
        );
    }

    #[test]
    fn shb_never_forwarded() {
        let source = LongPositionVector::new(GnAddress::new(1), 0, 41.178, -8.608, 0.0, 0.0);
        let p = GnPacket::single_hop(source, TrafficClass::dp2(), BtpPort::CAM, vec![]);
        assert_eq!(
            gbc_forward_decision(&p, 41.178, -8.608),
            ForwardDecision::Discard(DiscardReason::NotGeoBroadcast)
        );
    }

    #[test]
    fn chain_of_forwards_dies_at_hop_limit() {
        let mut p = gbc_packet();
        let mut hops = 0;
        loop {
            match gbc_forward_decision(&p, 41.178, -8.608) {
                ForwardDecision::Rebroadcast(f) => {
                    p = f;
                    hops += 1;
                    assert!(hops < 50, "runaway forwarding");
                }
                ForwardDecision::Discard(DiscardReason::HopLimitExhausted) => break,
                other => panic!("unexpected {other:?}"),
            }
        }
        // Initial RHL is 10: nine forwards then exhaustion.
        assert_eq!(hops, 9);
    }
}
