//! Basic Transport Protocol, non-interactive variant (BTP-B,
//! ETSI EN 302 636-5-1).
//!
//! BTP-B is a 4-byte header carrying a destination port and destination
//! port info. The facilities services use well-known ports: 2001 for CAM,
//! 2002 for DENM (ETSI TS 103 248).

use crate::bytesio::{ByteReader, ByteWriterExt};
use crate::Result;

/// A BTP destination port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BtpPort(pub u16);

impl BtpPort {
    /// Well-known port of the CA basic service (CAM).
    pub const CAM: BtpPort = BtpPort(2001);
    /// Well-known port of the DEN basic service (DENM).
    pub const DENM: BtpPort = BtpPort(2002);
    /// Well-known port of the CP service (CPM, ETSI TS 103 248).
    pub const CPM: BtpPort = BtpPort(2009);
}

impl std::fmt::Display for BtpPort {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            BtpPort::CAM => write!(f, "btp:2001(CAM)"),
            BtpPort::DENM => write!(f, "btp:2002(DENM)"),
            BtpPort::CPM => write!(f, "btp:2009(CPM)"),
            BtpPort(p) => write!(f, "btp:{p}"),
        }
    }
}

/// BTP-B header: destination port + destination port info.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BtpB {
    /// Destination port (facility service).
    pub destination_port: BtpPort,
    /// Destination port info (0 when unused).
    pub destination_port_info: u16,
}

impl BtpB {
    /// Wire size in bytes.
    pub const WIRE_SIZE: usize = 4;

    /// Creates a BTP-B header for the given facility port.
    pub fn new(destination_port: BtpPort) -> Self {
        Self {
            destination_port,
            destination_port_info: 0,
        }
    }

    pub(crate) fn write(&self, out: &mut Vec<u8>) {
        out.put_u16(self.destination_port.0);
        out.put_u16(self.destination_port_info);
    }

    pub(crate) fn read(r: &mut ByteReader<'_>) -> Result<Self> {
        Ok(Self {
            destination_port: BtpPort(r.u16()?),
            destination_port_info: r.u16()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn well_known_ports() {
        assert_eq!(BtpPort::CAM.0, 2001);
        assert_eq!(BtpPort::DENM.0, 2002);
        assert_eq!(BtpPort::CAM.to_string(), "btp:2001(CAM)");
        assert_eq!(BtpPort(1500).to_string(), "btp:1500");
    }

    #[test]
    fn header_roundtrip() {
        let h = BtpB::new(BtpPort::DENM);
        let mut out = Vec::new();
        h.write(&mut out);
        assert_eq!(out.len(), BtpB::WIRE_SIZE);
        let mut r = ByteReader::new(&out);
        assert_eq!(BtpB::read(&mut r).unwrap(), h);
    }
}
